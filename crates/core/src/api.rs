//! The unified mapping API: one request/report envelope, one
//! object-safe [`Mapper`] trait in front of every engine, and a batch
//! [`MappingService`].
//!
//! The workspace grew three mapping engines — the paper's decoupled
//! SMT+monomorphism mapper ([`crate::DecoupledMapper`]), and the
//! coupled-SAT and simulated-annealing baselines of `cgra-baseline` —
//! each with its own constructor shape and stats struct. This module
//! is the single stable surface in front of all of them:
//!
//! * [`MapRequest`] — a serde-ready envelope carrying the DFG, an
//!   optional CGRA override, a [`MapperConfig`], a wall-clock deadline
//!   and (non-serialized) a [`CancelFlag`] and a [`MapObserver`];
//! * [`MapReport`] — engine id, a [`MapOutcome`] unifying success and
//!   every [`MapError`] across engines, the unified
//!   [`MapStats`] superset, and the mapping itself. Requests and
//!   reports round-trip through JSON;
//! * [`Mapper`] — `fn map(&self, req: &MapRequest) -> MapReport`,
//!   object-safe, so heterogeneous engines live behind
//!   `Box<dyn Mapper>`;
//! * [`MappingService`] — owns a CGRA and an engine registry, and runs
//!   batches of requests across a scoped thread pool, returning
//!   reports in input order.
//!
//! # Example
//!
//! ```
//! use cgra_arch::Cgra;
//! use cgra_dfg::examples::running_example;
//! use monomap_core::api::{EngineId, MapRequest, MappingService};
//!
//! let cgra = Cgra::new(2, 2)?;
//! let service = MappingService::new(&cgra);
//!
//! // Requests are plain data: they round-trip through JSON, so they
//! // can arrive over the wire.
//! let request = MapRequest::new(EngineId::Decoupled, running_example());
//! let json = serde_json::to_string(&request)?;
//! let request: MapRequest = serde_json::from_str(&json)?;
//!
//! let report = service.map(&request);
//! assert_eq!(report.outcome.ii(), Some(4)); // the paper's Fig. 2b
//! let _wire = serde_json::to_string(&report)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Calling an engine directly
//!
//! The inherent `DecoupledMapper::map(&Dfg)` predates the trait and
//! shadows it on the concrete type; to push a [`MapRequest`] through a
//! concrete engine, call through the trait (`Mapper::map(&engine,
//! &request)`) or a `Box<dyn Mapper>`.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use cgra_arch::Cgra;
use cgra_base::CancelFlag;
use cgra_dfg::Dfg;

use crate::space::SpaceOutcome;
use crate::{DecoupledMapper, MapError, MapResult, MapStats, MapperConfig, Mapping};

// ---------------------------------------------------------------------
// Engine identity
// ---------------------------------------------------------------------

/// Identifies a mapping engine in requests, reports and the
/// [`MappingService`] registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineId {
    /// The paper's decoupled SMT + monomorphism mapper
    /// ([`crate::DecoupledMapper`]).
    Decoupled,
    /// The SAT-MapIt-style coupled space-time baseline
    /// (`cgra_baseline::CoupledMapper`).
    Coupled,
    /// The DRESC-style simulated-annealing baseline
    /// (`cgra_baseline::AnnealingMapper`).
    Annealing,
}

impl EngineId {
    /// Short lowercase name (stable; used in logs and tables).
    pub fn name(self) -> &'static str {
        match self {
            EngineId::Decoupled => "decoupled",
            EngineId::Coupled => "coupled",
            EngineId::Annealing => "annealing",
        }
    }

    /// Parses the stable lowercase name (the inverse of
    /// [`EngineId::name`]; used by CLI flags and URL query strings).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "decoupled" => Some(EngineId::Decoupled),
            "coupled" => Some(EngineId::Coupled),
            "annealing" => Some(EngineId::Annealing),
            _ => None,
        }
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------

/// Outcome of one monomorphism (space-phase) attempt, as reported to
/// observers. The payload-free mirror of [`SpaceOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceAttemptOutcome {
    /// A monomorphism was found.
    Found,
    /// The search space was exhausted.
    Exhausted,
    /// The step budget ran out.
    LimitReached,
    /// The cancellation flag interrupted the search.
    Cancelled,
}

impl From<&SpaceOutcome> for SpaceAttemptOutcome {
    fn from(o: &SpaceOutcome) -> Self {
        match o {
            SpaceOutcome::Found(_) => SpaceAttemptOutcome::Found,
            SpaceOutcome::Exhausted => SpaceAttemptOutcome::Exhausted,
            SpaceOutcome::LimitReached => SpaceAttemptOutcome::LimitReached,
            SpaceOutcome::Cancelled => SpaceAttemptOutcome::Cancelled,
        }
    }
}

/// A structured progress event emitted by the engines while a request
/// maps.
///
/// On the decoupled serial path the event stream is deterministic; in
/// portfolio mode the raced space searches of one batch coalesce into
/// a single [`MapEvent::SpaceAttempt`]. The baselines reuse the same
/// vocabulary: the coupled mapper reports each joint `(II, slack)` SAT
/// attempt as a `SpaceAttempt` (it has no separate time phase), the
/// annealer reports each restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapEvent {
    /// The search started attempting a new iteration interval.
    IiStarted {
        /// The iteration interval.
        ii: usize,
    },
    /// The time phase produced a schedule at this `(II, slack)` level.
    TimeSolutionFound {
        /// The iteration interval.
        ii: usize,
        /// The window slack of the level.
        slack: usize,
    },
    /// A space-phase attempt finished.
    SpaceAttempt {
        /// The iteration interval.
        ii: usize,
        /// The window slack of the level.
        slack: usize,
        /// How the attempt ended.
        outcome: SpaceAttemptOutcome,
    },
    /// The persistent incremental time solver proved an `(II, slack)`
    /// level unsatisfiable by widening its live instance, so the fresh
    /// per-level encode was skipped entirely (emitted only with
    /// [`MapperConfig::time_incremental`] on, immediately before the
    /// level's [`MapEvent::Escalated`]).
    LevelReused {
        /// The iteration interval of the reused solver.
        ii: usize,
        /// The window slack the live instance was widened to.
        slack: usize,
    },
    /// An `(II, slack)` level was exhausted and the search moved on
    /// (next slack, or next II after the last slack).
    Escalated {
        /// The exhausted iteration interval.
        ii: usize,
        /// The exhausted window slack.
        slack: usize,
    },
    /// The search finished (the final event of every observed map).
    Finished {
        /// Whether a mapping was produced.
        mapped: bool,
        /// The achieved II, when mapped.
        ii: Option<usize>,
    },
}

/// A callback receiving [`MapEvent`]s as a request maps.
///
/// Observers are shared across the portfolio worker threads, hence the
/// `Send + Sync` bound. Implementations should be cheap; they run on
/// the search's critical path.
pub trait MapObserver: Send + Sync {
    /// Called once per progress event.
    fn on_event(&self, event: &MapEvent);
}

/// A [`MapObserver`] that records every event, for tests and
/// diagnostics.
#[derive(Debug, Default)]
pub struct EventCollector {
    events: Mutex<Vec<MapEvent>>,
}

impl EventCollector {
    /// An empty collector.
    pub fn new() -> Self {
        EventCollector::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<MapEvent> {
        self.events.lock().expect("event log lock").clone()
    }
}

impl MapObserver for EventCollector {
    fn on_event(&self, event: &MapEvent) {
        self.events.lock().expect("event log lock").push(*event);
    }
}

// ---------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------

/// One mapping request: the serializable envelope every engine
/// accepts.
///
/// The `cancel` and `observer` handles are runtime-only: they are
/// skipped by serialization and come back as `None`, everything else
/// round-trips through JSON. Deserialization treats absent optional
/// fields as their defaults, so wire requests only name what they
/// override.
#[derive(Clone)]
pub struct MapRequest {
    /// Which engine should run this request.
    pub engine: EngineId,
    /// The kernel to map.
    pub dfg: Dfg,
    /// The `.mk` source the DFG was compiled from, when the request
    /// entered through the text front door ([`MapRequest::from_source`]
    /// or a wire request carrying `source` instead of `dfg`). Engines
    /// never read it; it is kept so the request re-serializes the same
    /// way it arrived.
    pub source: Option<String>,
    /// Target CGRA; `None` uses the engine's (or service's) own.
    pub cgra: Option<Cgra>,
    /// Mapper configuration. The request is authoritative on the trait
    /// path: engines run with this configuration, not the one they
    /// were constructed with.
    pub config: MapperConfig,
    /// Wall-clock deadline in seconds; when it expires the engine's
    /// cancellation flag is raised and the search returns
    /// [`MapError::Timeout`] at its next cancellation point.
    pub deadline_seconds: Option<f64>,
    /// Cooperative cancellation handle (runtime-only, not serialized).
    pub cancel: Option<CancelFlag>,
    /// Progress observer (runtime-only, not serialized).
    pub observer: Option<Arc<dyn MapObserver>>,
}

impl MapRequest {
    /// A request for `engine` with the default configuration.
    pub fn new(engine: EngineId, dfg: Dfg) -> Self {
        MapRequest {
            engine,
            dfg,
            source: None,
            cgra: None,
            config: MapperConfig::default(),
            deadline_seconds: None,
            cancel: None,
            observer: None,
        }
    }

    /// A request whose kernel arrives as `.mk` source text (see
    /// `monomap_frontend`): the source is compiled to a DFG here, and
    /// kept so the request serializes as `source` rather than `dfg`.
    ///
    /// # Errors
    ///
    /// Returns the frontend's [`monomap_frontend::ParseError`] when the
    /// source does not compile or does not hold exactly one kernel.
    pub fn from_source(
        engine: EngineId,
        source: impl Into<String>,
    ) -> Result<Self, monomap_frontend::ParseError> {
        let source = source.into();
        let dfg = monomap_frontend::compile_one(&source)?;
        let mut req = MapRequest::new(engine, dfg);
        req.source = Some(source);
        Ok(req)
    }

    /// Overrides the target CGRA (otherwise the engine's own is used).
    pub fn with_cgra(mut self, cgra: Cgra) -> Self {
        self.cgra = Some(cgra);
        self
    }

    /// Sets the mapper configuration.
    pub fn with_config(mut self, config: MapperConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline_seconds = Some(deadline.as_secs_f64());
        self
    }

    /// Installs a cooperative cancellation handle.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Installs a progress observer.
    pub fn with_observer(mut self, observer: Arc<dyn MapObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The deadline as a [`Duration`], if one is set. A negative value
    /// (a wire client's already-elapsed remaining time) clamps to zero
    /// — an immediately-expired deadline, not an unbounded search.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_seconds
            .filter(|s| s.is_finite())
            .map(|s| Duration::from_secs_f64(s.max(0.0)))
    }
}

impl fmt::Debug for MapRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapRequest")
            .field("engine", &self.engine)
            .field("dfg", &self.dfg.name())
            .field("source", &self.source.is_some())
            .field("cgra", &self.cgra)
            .field("config", &self.config)
            .field("deadline_seconds", &self.deadline_seconds)
            .field("cancel", &self.cancel.is_some())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl Serialize for MapRequest {
    fn to_value(&self) -> serde::Value {
        // A text-born request serializes back as `source` (the DFG is
        // re-derived on deserialization); a DFG-born request emits
        // exactly the entries it always has — no `source: null` — so
        // pre-frontend wire bytes are unchanged.
        let kernel = match &self.source {
            Some(source) => ("source".to_string(), source.to_value()),
            None => ("dfg".to_string(), self.dfg.to_value()),
        };
        serde::Value::Map(vec![
            ("engine".to_string(), self.engine.to_value()),
            kernel,
            ("cgra".to_string(), self.cgra.to_value()),
            ("config".to_string(), self.config.to_value()),
            (
                "deadline_seconds".to_string(),
                self.deadline_seconds.to_value(),
            ),
        ])
    }
}

impl Deserialize for MapRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("map", v))?;
        let opt = |name: &str| v.get(name).filter(|f| **f != serde::Value::Null);
        let source = opt("source")
            .map(String::from_value)
            .transpose()
            .map_err(|e| serde::de::Error::custom(format!("field `source`: {e}")))?;
        let dfg = match (&source, opt("dfg")) {
            (Some(_), Some(_)) => {
                return Err(serde::de::Error::custom(
                    "request carries both `source` and `dfg`; send exactly one",
                ));
            }
            (Some(source), None) => monomap_frontend::compile_one(source).map_err(|e| {
                serde::de::Error::custom(format!("source:{}:{}: {}", e.line, e.col, e.message))
            })?,
            (None, _) => serde::de::field(entries, "dfg")?,
        };
        Ok(MapRequest {
            engine: serde::de::field(entries, "engine")?,
            dfg,
            source,
            cgra: opt("cgra")
                .map(Cgra::from_value)
                .transpose()
                .map_err(|e| serde::de::Error::custom(format!("field `cgra`: {e}")))?,
            config: opt("config")
                .map(MapperConfig::from_value)
                .transpose()
                .map_err(|e| serde::de::Error::custom(format!("field `config`: {e}")))?
                .unwrap_or_default(),
            deadline_seconds: opt("deadline_seconds")
                .map(f64::from_value)
                .transpose()
                .map_err(|e| serde::de::Error::custom(format!("field `deadline_seconds`: {e}")))?,
            cancel: None,
            observer: None,
        })
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// How a request ended — the success/failure enum shared by every
/// engine (and the service itself).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapOutcome {
    /// A valid mapping was produced at the reported II.
    Mapped {
        /// The achieved iteration interval.
        ii: usize,
    },
    /// The engine ran and failed; the [`MapError`] is the structured
    /// cause (II range exhausted, timeout, invalid DFG, …).
    Failed(MapError),
    /// The service could not dispatch the request (e.g. the engine is
    /// not registered); no engine ran.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

impl MapOutcome {
    /// True when a mapping was produced.
    pub fn is_mapped(&self) -> bool {
        matches!(self, MapOutcome::Mapped { .. })
    }

    /// The achieved II, if mapped.
    pub fn ii(&self) -> Option<usize> {
        match self {
            MapOutcome::Mapped { ii } => Some(*ii),
            _ => None,
        }
    }

    /// The engine error, if the engine ran and failed.
    pub fn error(&self) -> Option<&MapError> {
        match self {
            MapOutcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// The result envelope of one [`MapRequest`]: engine id, unified
/// outcome, the unified [`MapStats`] superset, and the mapping itself
/// when one was found. Round-trips through JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapReport {
    /// The engine that ran.
    pub engine: EngineId,
    /// Name of the mapped DFG.
    pub dfg_name: String,
    /// How the request ended.
    pub outcome: MapOutcome,
    /// Search statistics (fields an engine does not produce stay at
    /// their defaults).
    pub stats: MapStats,
    /// The mapping, present exactly when `outcome` is
    /// [`MapOutcome::Mapped`].
    pub mapping: Option<Mapping>,
}

impl MapReport {
    /// True when this report may be memoized and replayed for an
    /// identical request: the outcome is a deterministic function of
    /// `(DFG, CGRA, config, engine)` alone.
    ///
    /// Successful mappings and deterministic failures ([`MapError`]
    /// variants that re-occur on every retry: invalid DFG, unsupported
    /// operation class, exhausted II range) are cacheable. A
    /// [`MapError::Timeout`] depends on the deadline, the cancel flag
    /// and machine load, and a [`MapOutcome::Rejected`] request never
    /// ran an engine — neither may be replayed from a cache.
    pub fn is_cacheable(&self) -> bool {
        match &self.outcome {
            MapOutcome::Mapped { .. } => true,
            MapOutcome::Failed(e) => !matches!(e, MapError::Timeout { .. }),
            MapOutcome::Rejected { .. } => false,
        }
    }

    /// Assembles a report from an engine's native result.
    pub fn from_result(engine: EngineId, dfg: &Dfg, result: Result<MapResult, MapError>) -> Self {
        match result {
            Ok(r) => MapReport {
                engine,
                dfg_name: dfg.name().to_string(),
                outcome: MapOutcome::Mapped { ii: r.mapping.ii() },
                stats: r.stats,
                mapping: Some(r.mapping),
            },
            Err(e) => MapReport {
                engine,
                dfg_name: dfg.name().to_string(),
                outcome: MapOutcome::Failed(e),
                stats: MapStats::default(),
                mapping: None,
            },
        }
    }

    /// Assembles a failure report with explicit statistics (engines
    /// that meter their failed searches use this instead of
    /// [`MapReport::from_result`]).
    pub fn from_error(engine: EngineId, dfg: &Dfg, error: MapError, stats: MapStats) -> Self {
        MapReport {
            engine,
            dfg_name: dfg.name().to_string(),
            outcome: MapOutcome::Failed(error),
            stats,
            mapping: None,
        }
    }
}

// ---------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------

/// The unified, object-safe mapping interface implemented by every
/// engine.
///
/// An implementation must honour the request end to end: the request's
/// configuration, CGRA override, cancellation handle, deadline and
/// observer — its own construction-time configuration applies only to
/// the engine's native (non-trait) entry points.
pub trait Mapper: Send + Sync {
    /// The engine's identity (stamped into reports and used as the
    /// [`MappingService`] registry key).
    fn engine_id(&self) -> EngineId;

    /// Maps one request, never panicking on failure: every error is
    /// folded into the report's [`MapOutcome`].
    fn map(&self, req: &MapRequest) -> MapReport;
}

/// Forwards one progress event to the observer, if one is installed —
/// the shared observer-plumbing helper of every engine.
pub fn emit(obs: Option<&dyn MapObserver>, event: MapEvent) {
    if let Some(o) = obs {
        o.on_event(&event);
    }
}

/// A stable 64-bit fingerprint of any serializable value, computed over
/// its serde data-model tree (FNV-1a; map entries hashed in their
/// deterministic serialization order).
///
/// The `monomap-service` mapping cache keys entries by
/// `(DFG digest, engine, fingerprint(CGRA), fingerprint(config))`:
/// two requests agree on a component exactly when their wire forms
/// agree, so the fingerprint is the memoization-safe identity of the
/// CGRA and of the [`MapperConfig`]. Not cryptographic.
///
/// ```
/// use cgra_arch::Cgra;
/// use monomap_core::api::fingerprint;
///
/// let a = Cgra::new(4, 4)?;
/// assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
/// assert_ne!(fingerprint(&a), fingerprint(&Cgra::new(4, 5)?));
/// # Ok::<(), cgra_arch::ArchError>(())
/// ```
pub fn fingerprint<T: serde::Serialize>(value: &T) -> u64 {
    hash_value(&value.to_value(), cgra_base::FNV64_OFFSET)
}

use cgra_base::fnv64;

fn hash_value(v: &serde::Value, h: u64) -> u64 {
    use serde::Value;
    match v {
        Value::Null => fnv64(h, b"\x00"),
        Value::Bool(b) => fnv64(h, &[1, u8::from(*b)]),
        Value::Int(i) => fnv64(fnv64(h, b"\x02"), &i.to_le_bytes()),
        Value::UInt(u) => fnv64(fnv64(h, b"\x03"), &u.to_le_bytes()),
        Value::Float(x) => fnv64(fnv64(h, b"\x04"), &x.to_bits().to_le_bytes()),
        Value::Str(s) => {
            let h = fnv64(fnv64(h, b"\x05"), &(s.len() as u64).to_le_bytes());
            fnv64(h, s.as_bytes())
        }
        Value::Seq(items) => {
            let mut h = fnv64(fnv64(h, b"\x06"), &(items.len() as u64).to_le_bytes());
            for item in items {
                h = hash_value(item, h);
            }
            h
        }
        Value::Map(entries) => {
            let mut h = fnv64(fnv64(h, b"\x07"), &(entries.len() as u64).to_le_bytes());
            for (k, val) in entries {
                h = fnv64(fnv64(h, &(k.len() as u64).to_le_bytes()), k.as_bytes());
                h = hash_value(val, h);
            }
            h
        }
    }
}

/// How often the deadline watchdog re-checks the caller's cancellation
/// flag while forwarding it into the engine-side flag.
const DEADLINE_POLL: Duration = Duration::from_millis(5);

/// Resolves the engine-side cancellation flag for `req` and runs `f`
/// with it, enforcing the request's wall-clock deadline. Engine
/// [`Mapper`] impls share this helper so cancellation and deadline
/// semantics are identical across engines.
///
/// Without a deadline, `f` receives the caller's own flag (or a fresh
/// one). With a deadline, `f` receives a **derived** flag: a watchdog
/// thread raises it when the deadline expires *or* when the caller's
/// flag is raised (forwarded within a few milliseconds), and the
/// search unwinds cooperatively at its next cancellation point. The
/// caller's flag itself is never raised by the watchdog — a
/// per-request deadline must not cancel the controller's (possibly
/// service-wide, shared) flag. The watchdog exits promptly when `f`
/// finishes first.
pub fn run_request<R>(req: &MapRequest, f: impl FnOnce(CancelFlag) -> R) -> R {
    let Some(deadline) = req.deadline() else {
        return f(req.cancel.clone().unwrap_or_default());
    };
    let engine_flag = CancelFlag::new();
    // An already-expired deadline (zero, or negative on the wire) must
    // time out deterministically: raise the flag before the engine
    // starts rather than racing its first solve against the watchdog
    // thread getting scheduled.
    if deadline.is_zero() {
        engine_flag.cancel();
        return f(engine_flag);
    }
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let caller = req.cancel.clone();
        let watchdog_flag = engine_flag.clone();
        scope.spawn(move || {
            let started = std::time::Instant::now();
            loop {
                let remaining = deadline.saturating_sub(started.elapsed());
                if remaining.is_zero() || caller.as_ref().is_some_and(CancelFlag::is_cancelled) {
                    watchdog_flag.cancel();
                    return;
                }
                // Ok / Disconnected => f finished first: exit without
                // touching any flag.
                match done_rx.recv_timeout(remaining.min(DEADLINE_POLL)) {
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        });
        let result = f(engine_flag.clone());
        drop(done_tx);
        result
    })
}

impl Mapper for DecoupledMapper {
    fn engine_id(&self) -> EngineId {
        EngineId::Decoupled
    }

    fn map(&self, req: &MapRequest) -> MapReport {
        let cgra = req.cgra.as_ref().unwrap_or_else(|| self.cgra());
        let mut inner = DecoupledMapper::with_config(cgra, req.config.clone());
        let result = run_request(req, |flag| {
            inner.set_cancel(flag);
            inner.map_observed(&req.dfg, req.observer.as_deref())
        });
        MapReport::from_result(EngineId::Decoupled, &req.dfg, result)
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// A batch-mapping front end: owns a CGRA and a registry of engines,
/// dispatches [`MapRequest`]s by [`EngineId`], and runs batches across
/// a scoped thread pool.
///
/// [`MappingService::new`] registers the decoupled engine;
/// `cgra_baseline::standard_service` builds a service with all three
/// engines. Dispatching an unregistered engine id yields a
/// [`MapOutcome::Rejected`] report rather than an error, so one bad
/// request never poisons a batch.
///
/// Cancellation: a request's own [`MapRequest::cancel`] handle wins;
/// requests without one inherit the service-level flag installed by
/// [`MappingService::with_cancel`], letting a controller release a
/// whole batch at once.
pub struct MappingService {
    cgra: Cgra,
    engines: Vec<Box<dyn Mapper>>,
    parallelism: usize,
    cancel: Option<CancelFlag>,
}

impl MappingService {
    /// A service over `cgra` with the decoupled engine registered and
    /// serial batch execution.
    pub fn new(cgra: &Cgra) -> Self {
        MappingService {
            cgra: cgra.clone(),
            engines: vec![Box::new(DecoupledMapper::new(cgra))],
            parallelism: 1,
            cancel: None,
        }
    }

    /// The service's CGRA (the default target of every request without
    /// a [`MapRequest::cgra`] override).
    pub fn cgra(&self) -> &Cgra {
        &self.cgra
    }

    /// Registers an engine, replacing any engine with the same id.
    pub fn register(&mut self, engine: Box<dyn Mapper>) {
        match self
            .engines
            .iter_mut()
            .find(|e| e.engine_id() == engine.engine_id())
        {
            Some(slot) => *slot = engine,
            None => self.engines.push(engine),
        }
    }

    /// Builder-style [`MappingService::register`].
    pub fn with_engine(mut self, engine: Box<dyn Mapper>) -> Self {
        self.register(engine);
        self
    }

    /// Sets the worker-thread count of [`MappingService::map_batch`]
    /// (`1`, the default, runs batches serially in input order).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "service parallelism must be at least 1");
        self.parallelism = workers;
        self
    }

    /// Installs a service-level cancellation flag inherited by every
    /// request that does not carry its own.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The registered engine ids, in registration order.
    pub fn engine_ids(&self) -> Vec<EngineId> {
        self.engines.iter().map(|e| e.engine_id()).collect()
    }

    /// The registered engine for `id`, if any.
    pub fn engine(&self, id: EngineId) -> Option<&dyn Mapper> {
        self.engines
            .iter()
            .find(|e| e.engine_id() == id)
            .map(Box::as_ref)
    }

    /// Maps one request on the calling thread.
    pub fn map(&self, req: &MapRequest) -> MapReport {
        let Some(engine) = self.engine(req.engine) else {
            return MapReport {
                engine: req.engine,
                dfg_name: req.dfg.name().to_string(),
                outcome: MapOutcome::Rejected {
                    reason: format!("engine `{}` is not registered", req.engine),
                },
                stats: MapStats::default(),
                mapping: None,
            };
        };
        if req.cancel.is_none() {
            if let Some(service_flag) = &self.cancel {
                let mut req = req.clone();
                req.cancel = Some(service_flag.clone());
                return engine.map(&req);
            }
        }
        engine.map(req)
    }

    /// Maps a batch of requests, returning one report per request **in
    /// input order**, regardless of which worker finished first.
    ///
    /// With [`MappingService::with_parallelism`] above 1 the requests
    /// are pulled from a shared queue by that many scoped worker
    /// threads; each request still runs on a single worker (a
    /// request's own [`MapperConfig::space_parallelism`] composes on
    /// top, inside the engine).
    pub fn map_batch(&self, requests: &[MapRequest]) -> Vec<MapReport> {
        let workers = self.parallelism.min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|r| self.map(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let (report_tx, report_rx) = mpsc::channel::<(usize, MapReport)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let report_tx = report_tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let _ = report_tx.send((i, self.map(&requests[i])));
                });
            }
        });
        drop(report_tx);
        let mut slots: Vec<Option<MapReport>> = requests.iter().map(|_| None).collect();
        for (i, report) in report_rx {
            slots[i] = Some(report);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every request produces exactly one report"))
            .collect()
    }
}

impl fmt::Debug for MappingService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappingService")
            .field("cgra", &self.cgra)
            .field("engines", &self.engine_ids())
            .field("parallelism", &self.parallelism)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::examples::{accumulator, running_example};

    #[test]
    fn request_roundtrips_through_json() {
        let req = MapRequest::new(EngineId::Decoupled, running_example())
            .with_cgra(Cgra::new(2, 2).unwrap())
            .with_config(MapperConfig::new().with_max_ii(9))
            .with_deadline(Duration::from_secs(5));
        let json = serde_json::to_string(&req).unwrap();
        let back: MapRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.engine, EngineId::Decoupled);
        assert_eq!(back.dfg.name(), req.dfg.name());
        assert_eq!(back.dfg.num_nodes(), req.dfg.num_nodes());
        assert_eq!(back.cgra.as_ref().map(Cgra::num_pes), Some(4));
        assert_eq!(back.config.max_ii, Some(9));
        assert_eq!(back.deadline_seconds, Some(5.0));
        assert!(back.cancel.is_none(), "runtime handle is not serialized");
        assert!(back.observer.is_none(), "runtime handle is not serialized");
        // Second round trip is a fixpoint.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn source_request_compiles_on_the_wire() {
        let req = MapRequest::from_source(
            EngineId::Decoupled,
            "kernel dot { i32 a = in(0); i32 b = in(1); rec i32 s = 0; s = s + a * b; out(s); }",
        )
        .unwrap();
        assert_eq!(req.dfg.name(), "dot");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"source\""), "{json}");
        assert!(
            !json.contains("\"dfg\""),
            "source form replaces the DFG: {json}"
        );
        let back: MapRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dfg.digest(), req.dfg.digest());
        // Second round trip is a fixpoint.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn source_errors_carry_their_position() {
        let err =
            MapRequest::from_source(EngineId::Decoupled, "kernel k {\n  i32 x = ;\n}").unwrap_err();
        assert_eq!((err.line, err.col), (2, 11));

        // The same failure over the wire mentions the position too.
        let json = r#"{"engine":"Decoupled","source":"kernel k {\n  i32 x = ;\n}"}"#;
        let err = serde_json::from_str::<MapRequest>(json).unwrap_err();
        assert!(err.to_string().contains("source:2:11"), "{err}");
    }

    #[test]
    fn source_and_dfg_together_are_rejected() {
        let dfg_json = serde_json::to_string(&accumulator()).unwrap();
        let json = format!(
            r#"{{"engine":"Decoupled","dfg":{dfg_json},"source":"kernel k {{ out(in(0)); }}"}}"#
        );
        let err = serde_json::from_str::<MapRequest>(&json).unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn minimal_wire_request_parses() {
        let dfg_json = serde_json::to_string(&accumulator()).unwrap();
        let json = format!(r#"{{"engine":"Decoupled","dfg":{dfg_json}}}"#);
        let req: MapRequest = serde_json::from_str(&json).unwrap();
        assert!(req.cgra.is_none());
        assert_eq!(req.config.max_window_slack, 2, "defaults apply");
        assert!(req.deadline().is_none());
    }

    #[test]
    fn report_roundtrips_including_errors() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        // Success.
        let ok = service.map(&MapRequest::new(EngineId::Decoupled, running_example()));
        assert_eq!(ok.outcome.ii(), Some(4));
        let json = serde_json::to_string(&ok).unwrap();
        let back: MapReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ok);
        // Engine failure (II cap below mII).
        let err = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example())
                .with_config(MapperConfig::new().with_max_ii(2)),
        );
        assert_eq!(
            err.outcome.error(),
            Some(&MapError::NoSolution { mii: 4, max_ii: 2 })
        );
        assert!(err.mapping.is_none());
        let json = serde_json::to_string(&err).unwrap();
        let back: MapReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn unregistered_engine_is_rejected_not_panicking() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra); // decoupled only
        let report = service.map(&MapRequest::new(EngineId::Coupled, accumulator()));
        assert!(matches!(report.outcome, MapOutcome::Rejected { .. }));
        // Rejection reports round-trip too.
        let json = serde_json::to_string(&report).unwrap();
        let back: MapReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn request_cgra_override_wins() {
        // Service over a 2x2, request overrides with a 3x3: the report
        // must reflect the override (accumulator still maps, and the
        // mapping validates against the 3x3).
        let service = MappingService::new(&Cgra::new(2, 2).unwrap());
        let big = Cgra::new(3, 3).unwrap();
        let report = service
            .map(&MapRequest::new(EngineId::Decoupled, accumulator()).with_cgra(big.clone()));
        let mapping = report.mapping.expect("maps");
        mapping.validate(&accumulator(), &big).unwrap();
    }

    #[test]
    fn deadline_zero_times_out() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let report = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example()).with_deadline(Duration::ZERO),
        );
        assert!(
            matches!(report.outcome, MapOutcome::Failed(MapError::Timeout { .. })),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn negative_deadline_is_already_expired() {
        // A wire client computing `deadline - now` can send a negative
        // remainder: that is an expired deadline, not an unbounded
        // search.
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let mut req = MapRequest::new(EngineId::Decoupled, running_example());
        req.deadline_seconds = Some(-0.3);
        assert_eq!(req.deadline(), Some(Duration::ZERO));
        let report = service.map(&req);
        assert!(
            matches!(report.outcome, MapOutcome::Failed(MapError::Timeout { .. })),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn request_deadline_never_raises_the_service_flag() {
        // Regression: the deadline watchdog used to raise the flag the
        // engine inherited — with a service-level flag installed, one
        // request's deadline cancelled every other request. The
        // watchdog must raise only a derived, request-local flag.
        let cgra = Cgra::new(2, 2).unwrap();
        let controller = CancelFlag::new();
        let service = MappingService::new(&cgra).with_cancel(controller.clone());
        let expired = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example()).with_deadline(Duration::ZERO),
        );
        assert!(matches!(
            expired.outcome,
            MapOutcome::Failed(MapError::Timeout { .. })
        ));
        assert!(
            !controller.is_cancelled(),
            "a request deadline must not raise the shared service flag"
        );
        // The service keeps working for later requests.
        let next = service.map(&MapRequest::new(EngineId::Decoupled, accumulator()));
        assert!(next.outcome.is_mapped(), "{:?}", next.outcome);
    }

    #[test]
    fn caller_cancel_is_forwarded_under_a_deadline() {
        // With a deadline installed the engine runs on a derived flag;
        // a caller cancellation must still propagate into it promptly.
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let caller = CancelFlag::new();
        caller.cancel();
        let report = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example())
                .with_deadline(Duration::from_secs(600))
                .with_cancel(caller),
        );
        assert!(
            matches!(report.outcome, MapOutcome::Failed(MapError::Timeout { .. })),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn deadline_watchdog_does_not_cancel_after_completion() {
        // A roomy deadline: the map finishes first, and the
        // caller-supplied flag must stay un-raised for reuse.
        let flag = CancelFlag::new();
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let report = service.map(
            &MapRequest::new(EngineId::Decoupled, accumulator())
                .with_deadline(Duration::from_secs(600))
                .with_cancel(flag.clone()),
        );
        assert!(report.outcome.is_mapped());
        assert!(!flag.is_cancelled(), "completion must not raise the flag");
    }

    #[test]
    fn service_cancel_flag_releases_requests_without_their_own() {
        let cgra = Cgra::new(2, 2).unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        let service = MappingService::new(&cgra).with_cancel(flag);
        let report = service.map(&MapRequest::new(EngineId::Decoupled, running_example()));
        assert!(matches!(
            report.outcome,
            MapOutcome::Failed(MapError::Timeout { .. })
        ));
    }

    #[test]
    fn batch_reports_come_back_in_input_order() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra).with_parallelism(4);
        let kernels = [
            running_example(),
            accumulator(),
            running_example(),
            accumulator(),
            running_example(),
            accumulator(),
        ];
        let requests: Vec<MapRequest> = kernels
            .iter()
            .map(|k| MapRequest::new(EngineId::Decoupled, k.clone()))
            .collect();
        let reports = service.map_batch(&requests);
        assert_eq!(reports.len(), requests.len());
        for (req, rep) in requests.iter().zip(&reports) {
            assert_eq!(rep.dfg_name, req.dfg.name(), "input order preserved");
            assert!(rep.outcome.is_mapped());
        }
        // Batch results equal the serial per-request results (the
        // decoupled engine is deterministic per request).
        let serial: Vec<MapReport> = requests.iter().map(|r| service.map(r)).collect();
        for (a, b) in reports.iter().zip(&serial) {
            assert_eq!(a.mapping, b.mapping);
        }
    }

    #[test]
    fn fingerprint_tracks_wire_identity() {
        let cgra = Cgra::new(4, 4).unwrap();
        assert_eq!(fingerprint(&cgra), fingerprint(&cgra.clone()));
        assert_ne!(fingerprint(&cgra), fingerprint(&Cgra::new(4, 5).unwrap()));
        let config = MapperConfig::default();
        assert_eq!(fingerprint(&config), fingerprint(&MapperConfig::new()));
        assert_ne!(
            fingerprint(&config),
            fingerprint(&MapperConfig::new().with_max_ii(9))
        );
        // A round trip through JSON preserves the fingerprint (the
        // cache may be keyed from a wire request or a native one).
        let json = serde_json::to_string(&config).unwrap();
        let back: MapperConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(fingerprint(&back), fingerprint(&config));
    }

    #[test]
    fn cacheability_follows_determinism() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let mapped = service.map(&MapRequest::new(EngineId::Decoupled, running_example()));
        assert!(mapped.is_cacheable(), "successful mappings are cacheable");
        let no_solution = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example())
                .with_config(MapperConfig::new().with_max_ii(2)),
        );
        assert!(
            no_solution.is_cacheable(),
            "exhausted II range is deterministic"
        );
        let timeout = service.map(
            &MapRequest::new(EngineId::Decoupled, running_example()).with_deadline(Duration::ZERO),
        );
        assert!(!timeout.is_cacheable(), "timeouts depend on the deadline");
        let rejected = service.map(&MapRequest::new(EngineId::Coupled, running_example()));
        assert!(!rejected.is_cacheable(), "no engine ran");
    }

    #[test]
    fn trait_object_replaces_engine_glue() {
        let cgra = Cgra::new(2, 2).unwrap();
        let boxed: Box<dyn Mapper> = Box::new(DecoupledMapper::new(&cgra));
        assert_eq!(boxed.engine_id(), EngineId::Decoupled);
        let report = boxed.map(&MapRequest::new(EngineId::Decoupled, running_example()));
        assert_eq!(report.outcome.ii(), Some(4));
    }

    #[test]
    fn observer_receives_deterministic_serial_events() {
        let cgra = Cgra::new(2, 2).unwrap();
        let service = MappingService::new(&cgra);
        let run = || {
            let collector = Arc::new(EventCollector::new());
            let report = service.map(
                &MapRequest::new(EngineId::Decoupled, running_example())
                    .with_observer(collector.clone()),
            );
            assert!(report.outcome.is_mapped());
            collector.events()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "serial event stream is deterministic");
        assert!(matches!(a.first(), Some(MapEvent::IiStarted { ii: 4 })));
        assert!(matches!(
            a.last(),
            Some(MapEvent::Finished {
                mapped: true,
                ii: Some(4)
            })
        ));
        assert!(a
            .iter()
            .any(|e| matches!(e, MapEvent::TimeSolutionFound { .. })));
        assert!(a.iter().any(|e| matches!(
            e,
            MapEvent::SpaceAttempt {
                outcome: SpaceAttemptOutcome::Found,
                ..
            }
        )));
    }
}
