//! Construction of the monomorphism problem from a time solution
//! (paper §IV-C): the scheduled DFG becomes the pattern, the MRRG the
//! target — plus the [`SpaceEngine`] that amortises target construction
//! across attempts.

use std::collections::HashMap;
use std::sync::Arc;

use cgra_arch::{Cgra, Mrrg};
use cgra_base::CancelFlag;
use cgra_dfg::Dfg;
use cgra_iso::{BitSet, MonoOutcome, Pattern, SearchConfig, Searcher, Target};
use cgra_sched::TimeSolution;

/// Builds the undirected labelled pattern graph from the DFG and its
/// time solution: labels are kernel slots (`l_G(v) = T_v mod II`), edge
/// direction is dropped, self edges vanish (paper §IV-B: "the
/// directionality of the edges becomes redundant and is removed").
///
/// Each vertex additionally carries its operation class as a
/// requirement mask, matched against the per-PE capability masks of
/// [`build_target`]: on heterogeneous CGRAs the search's candidate
/// domains are *compatibility-filtered* up front (an op lands only on
/// PEs whose functional units cover it), which shrinks the space
/// instead of growing it. On homogeneous CGRAs every target vertex
/// carries the full mask, so the domains — and therefore the search —
/// are exactly what they were without capabilities.
pub fn build_pattern(dfg: &Dfg, solution: &TimeSolution) -> Pattern {
    let labels: Vec<u32> = dfg.nodes().map(|v| solution.slot(v) as u32).collect();
    let edges: Vec<(usize, usize)> = dfg
        .edges()
        .iter()
        .filter(|e| e.src != e.dst)
        .map(|e| (e.src.index(), e.dst.index()))
        .collect();
    let requirements: Vec<u32> = dfg
        .nodes()
        .map(|v| dfg.op(v).op_class().bit() as u32)
        .collect();
    Pattern::new(labels, edges).with_requirements(requirements)
}

/// Builds the MRRG as a monomorphism target: vertex `slot · |PEs| + pe`
/// carries label `slot`; adjacency rows are assembled directly from the
/// CGRA neighbour masks (same-slot: neighbours; cross-slot: neighbours
/// plus the PE itself — the register-file-readability relation of
/// [`Mrrg`]). Every vertex also carries its PE's capability bitmask,
/// the counterpart of [`build_pattern`]'s requirement masks.
pub fn build_target(cgra: &Cgra, ii: usize) -> Target {
    let n = cgra.num_pes();
    let total = n * ii;
    let labels: Vec<u32> = (0..total).map(|i| (i / n) as u32).collect();
    let mut rows = Vec::with_capacity(total);
    let mut caps = Vec::with_capacity(total);
    for slot in 0..ii {
        for pe in cgra.pes() {
            let mut row = BitSet::new(total);
            for other in 0..ii {
                let base = other * n;
                if other == slot {
                    for q in cgra.neighbors(pe) {
                        row.insert(base + q.index());
                    }
                } else {
                    for q in cgra.neighbor_mask_with_self(pe).iter() {
                        row.insert(base + q.index());
                    }
                }
            }
            rows.push(row);
            caps.push(cgra.capability(pe).bits() as u32);
        }
    }
    Target::from_rows(labels, rows).with_capabilities(caps)
}

/// Outcome of one space-phase attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpaceOutcome {
    /// `map[v]` is the MRRG vertex index of node `v`.
    Found(Vec<usize>),
    /// The search space was exhausted without a monomorphism.
    Exhausted,
    /// The step budget ran out.
    LimitReached,
    /// The cancellation flag interrupted the search.
    Cancelled,
}

impl From<MonoOutcome> for SpaceOutcome {
    fn from(o: MonoOutcome) -> Self {
        match o {
            MonoOutcome::Found(map) => SpaceOutcome::Found(map),
            MonoOutcome::Exhausted => SpaceOutcome::Exhausted,
            MonoOutcome::LimitReached => SpaceOutcome::LimitReached,
            MonoOutcome::Cancelled => SpaceOutcome::Cancelled,
        }
    }
}

/// The reusable space-phase engine.
///
/// The paper's headline claim is that decoupling makes the space phase
/// cheap; rebuilding the MRRG [`Target`] for every attempt worked
/// against that — at II `k` on an `n`-PE CGRA each rebuild allocates
/// `n·k` bit rows of `n·k` bits. The engine caches the target per II
/// (the target depends only on the CGRA and the II, never on the time
/// solution or slack level), so all slack levels and all enumerated
/// time solutions at one II share a single construction.
///
/// Targets are handed out as [`Arc`]s: the portfolio mapper shares one
/// target across its worker threads without copying.
pub struct SpaceEngine<'a> {
    cgra: &'a Cgra,
    targets: HashMap<usize, Arc<Target>>,
    /// Targets constructed (cache misses) — observable amortisation.
    builds: usize,
}

impl<'a> SpaceEngine<'a> {
    /// An engine for `cgra` with an empty target cache.
    pub fn new(cgra: &'a Cgra) -> Self {
        SpaceEngine {
            cgra,
            targets: HashMap::new(),
            builds: 0,
        }
    }

    /// The CGRA this engine builds targets for.
    pub fn cgra(&self) -> &Cgra {
        self.cgra
    }

    /// Number of targets constructed so far (cache misses).
    pub fn target_builds(&self) -> usize {
        self.builds
    }

    /// The monomorphism target for iteration interval `ii`, built on
    /// first use and cached for every later attempt at the same II.
    pub fn target(&mut self, ii: usize) -> Arc<Target> {
        if let Some(t) = self.targets.get(&ii) {
            return Arc::clone(t);
        }
        self.builds += 1;
        let t = Arc::new(build_target(self.cgra, ii));
        self.targets.insert(ii, Arc::clone(&t));
        t
    }

    /// Drops cached targets for IIs other than `ii` (the mapper calls
    /// this when it escalates the II: earlier targets are never needed
    /// again, and large-CGRA rows are not free to keep).
    pub fn retain_ii(&mut self, ii: usize) {
        self.targets.retain(|&k, _| k == ii);
    }

    /// Runs the monomorphism search for one time solution against the
    /// cached target, with a step budget and an optional cancellation
    /// flag polled inside the DFS.
    ///
    /// Returns the outcome along with the number of search steps taken.
    pub fn search(
        &mut self,
        dfg: &Dfg,
        solution: &TimeSolution,
        step_limit: u64,
        cancel: Option<&CancelFlag>,
    ) -> (SpaceOutcome, u64) {
        let target = self.target(solution.ii());
        let pattern = build_pattern(dfg, solution);
        let mut config = SearchConfig::steps(step_limit);
        if let Some(flag) = cancel {
            config = config.with_cancel_flag(flag.clone());
        }
        let mut searcher = Searcher::with_config(&pattern, &target, config);
        let outcome = SpaceOutcome::from(searcher.run());
        (outcome, searcher.stats().steps)
    }
}

/// Runs the monomorphism search for one time solution.
///
/// Returns the found map along with the number of search steps taken.
/// One-shot convenience over [`SpaceEngine`] (the target is built and
/// dropped); callers with several attempts at one II should hold a
/// [`SpaceEngine`] instead.
pub fn space_search(
    dfg: &Dfg,
    cgra: &Cgra,
    solution: &TimeSolution,
    step_limit: u64,
    cancel: Option<&CancelFlag>,
) -> (SpaceOutcome, u64) {
    SpaceEngine::new(cgra).search(dfg, solution, step_limit, cancel)
}

/// Verifies that target construction agrees with the [`Mrrg`] adjacency
/// oracle (used by tests; the target is the performance-oriented
/// materialisation of the same graph).
pub fn target_matches_mrrg(cgra: &Cgra, ii: usize) -> bool {
    let target = build_target(cgra, ii);
    let mrrg = Mrrg::new(cgra, ii);
    if target.num_vertices() != mrrg.num_vertices() {
        return false;
    }
    for a in 0..target.num_vertices() {
        let va = mrrg.vertex_at(a);
        if target.label(a) as usize != mrrg.label(va) {
            return false;
        }
        for b in 0..target.num_vertices() {
            if target.adjacent(a, b) != mrrg.adjacent(va, mrrg.vertex_at(b)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_dfg::examples::running_example;
    use cgra_sched::{TimeSolver, TimeSolverConfig};

    #[test]
    fn target_agrees_with_mrrg_oracle() {
        for topo in [Topology::Torus, Topology::Mesh] {
            let cgra = Cgra::with_topology(2, 2, topo).unwrap();
            assert!(target_matches_mrrg(&cgra, 3), "{topo} 2x2 II=3");
        }
        let cgra = Cgra::new(3, 3).unwrap();
        assert!(target_matches_mrrg(&cgra, 2), "torus 3x3 II=2");
    }

    #[test]
    fn pattern_drops_direction_and_self_edges() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let p = build_pattern(&dfg, &sol);
        assert_eq!(p.num_vertices(), 14);
        // 15 directed edges, no duplicates between the same pair, no
        // self edges in the running example.
        assert_eq!(p.num_edges(), 15);
        for v in dfg.nodes() {
            assert_eq!(p.label(v.index()) as usize, sol.slot(v));
        }
    }

    #[test]
    fn running_example_space_solution_exists() {
        // The paper's Fig. 4: a monomorphism exists for the running
        // example at II = 4 on the 2×2 CGRA.
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let (outcome, steps) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        assert!(matches!(outcome, SpaceOutcome::Found(_)), "{outcome:?}");
        assert!(steps > 0);
    }

    #[test]
    fn engine_caches_target_per_ii() {
        let cgra = Cgra::new(4, 4).unwrap();
        let mut engine = SpaceEngine::new(&cgra);
        let a = engine.target(3);
        let b = engine.target(3);
        assert!(Arc::ptr_eq(&a, &b), "same II shares one target");
        assert_eq!(engine.target_builds(), 1);
        let c = engine.target(4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(engine.target_builds(), 2);
        engine.retain_ii(4);
        let a2 = engine.target(3);
        assert!(
            !Arc::ptr_eq(&a, &a2),
            "retain_ii(4) evicted the II=3 target"
        );
        assert_eq!(engine.target_builds(), 3);
    }

    #[test]
    fn engine_search_matches_one_shot_search() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let mut engine = SpaceEngine::new(&cgra);
        let (a, steps_a) = engine.search(&dfg, &sol, 1_000_000, None);
        let (b, steps_b) = engine.search(&dfg, &sol, 1_000_000, None);
        let (c, steps_c) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        assert_eq!(a, b, "engine search is deterministic across reuse");
        assert_eq!(a, c, "cached target gives the same result as a rebuild");
        assert_eq!(steps_a, steps_b);
        assert_eq!(steps_a, steps_c);
        assert_eq!(
            engine.target_builds(),
            1,
            "second attempt reused the target"
        );
    }

    #[test]
    fn engine_search_observes_cancel_flag() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        let mut engine = SpaceEngine::new(&cgra);
        let (outcome, steps) = engine.search(&dfg, &sol, 1_000_000, Some(&flag));
        assert_eq!(outcome, SpaceOutcome::Cancelled);
        assert_eq!(steps, 0);
    }

    #[test]
    fn heterogeneous_target_filters_domains() {
        use cgra_arch::{CapabilityProfile, OpClass};
        use cgra_dfg::{DfgBuilder, Operation as Op};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let ld = b.load("ld", x);
        b.output("o", ld);
        let dfg = b.build().unwrap();
        let cgra = Cgra::new(3, 3)
            .unwrap()
            .with_capability_profile(CapabilityProfile::MemLeftColumn);
        let cfg = TimeSolverConfig::for_cgra(&cgra).with_window_slack(1);
        let sol = TimeSolver::new(&dfg, 2, cfg).unwrap().solve().unwrap();
        let (outcome, _) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        let SpaceOutcome::Found(map) = outcome else {
            panic!("mem-left-column hosts one load: {outcome:?}");
        };
        // The load must sit in the memory column (PE index % 3 == 0).
        let n = cgra.num_pes();
        let load_pe = map[1] % n;
        assert_eq!(load_pe % 3, 0, "load on PE{load_pe} outside the mem column");
        assert_eq!(dfg.op(cgra_dfg::NodeId::from_index(1)), Op::Load);
        assert_eq!(cgra.providers(OpClass::Mem), 3);
    }

    #[test]
    fn homogeneous_target_capabilities_accept_everything() {
        // On a homogeneous grid every target vertex carries the full
        // mask, so requirement filtering removes nothing and the search
        // is unchanged.
        let cgra = Cgra::new(2, 2).unwrap();
        let t = build_target(&cgra, 2);
        for v in 0..t.num_vertices() {
            assert_eq!(t.capability(v), cgra_arch::OpClassSet::all().bits() as u32);
        }
    }

    #[test]
    fn target_sizes() {
        let cgra = Cgra::new(4, 4).unwrap();
        let t = build_target(&cgra, 5);
        assert_eq!(t.num_vertices(), 80);
        // Uniform torus: same-slot degree 4, cross-slot 5 each.
        assert_eq!(t.degree(0), 4 + 4 * 5);
    }
}
