//! Construction of the monomorphism problem from a time solution
//! (paper §IV-C): the scheduled DFG becomes the pattern, the MRRG the
//! target — plus the [`SpaceEngine`] that amortises target construction
//! across attempts.

use std::collections::HashMap;
use std::sync::Arc;

use cgra_arch::{Cgra, Mrrg, RoutingModel};
use cgra_base::CancelFlag;
use cgra_dfg::Dfg;
use cgra_iso::{BitSet, MonoOutcome, Pattern, SearchConfig, Searcher, Target};
use cgra_sched::TimeSolution;

/// Builds the undirected labelled pattern graph from the DFG and its
/// time solution: labels are kernel slots (`l_G(v) = T_v mod II`), edge
/// direction is dropped, self edges vanish (paper §IV-B: "the
/// directionality of the edges becomes redundant and is removed").
///
/// Each vertex additionally carries its operation class as a
/// requirement mask, matched against the per-PE capability masks of
/// [`build_target`]: on heterogeneous CGRAs the search's candidate
/// domains are *compatibility-filtered* up front (an op lands only on
/// PEs whose functional units cover it), which shrinks the space
/// instead of growing it. On homogeneous CGRAs every target vertex
/// carries the full mask, so the domains — and therefore the search —
/// are exactly what they were without capabilities.
pub fn build_pattern(dfg: &Dfg, solution: &TimeSolution) -> Pattern {
    let labels: Vec<u32> = dfg.nodes().map(|v| solution.slot(v) as u32).collect();
    let edges: Vec<(usize, usize)> = dfg
        .edges()
        .iter()
        .filter(|e| e.src != e.dst)
        .map(|e| (e.src.index(), e.dst.index()))
        .collect();
    let requirements: Vec<u32> = dfg
        .nodes()
        .map(|v| dfg.op(v).op_class().bit() as u32)
        .collect();
    Pattern::new(labels, edges).with_requirements(requirements)
}

/// Builds the MRRG as a monomorphism target under a k-hop routing
/// model: vertex `slot · |PEs| + pe` carries label `slot`, and the
/// edge relation is assembled from the per-distance reachability rows
/// of a [`RoutingModel`] as distance tiers (tier 0: the held-value
/// relation — the same PE in every other slot; tier `d`: the PEs at
/// exactly `d` topology hops, in every slot for cross-slot pairs and
/// excluding the producer's own slot only at `d = 0`). The DFS
/// consumes the cumulative union of the tiers, so at `k = 1` the
/// relation is exactly the classic register-file-readability relation
/// of [`Mrrg`]: same-slot pairs must be neighbours, cross-slot pairs
/// may also share the PE. Every vertex also carries its PE's
/// capability bitmask, the counterpart of [`build_pattern`]'s
/// requirement masks.
pub fn build_target(cgra: &Cgra, ii: usize, max_route_hops: usize) -> Target {
    let routing = RoutingModel::new(cgra, max_route_hops);
    build_target_with_routing(cgra, ii, &routing)
}

/// [`build_target`] against a prebuilt routing model (the
/// [`SpaceEngine`] holds one model across every II it builds targets
/// for).
fn build_target_with_routing(cgra: &Cgra, ii: usize, routing: &RoutingModel) -> Target {
    let n = cgra.num_pes();
    let total = n * ii;
    let labels: Vec<u32> = (0..total).map(|i| (i / n) as u32).collect();
    let caps: Vec<u32> = (0..ii)
        .flat_map(|_| cgra.pes().map(|pe| cgra.capability(pe).bits() as u32))
        .collect();
    let mut tiers = Vec::with_capacity(routing.max_hops() + 1);
    let mut tier0 = Vec::with_capacity(total);
    for slot in 0..ii {
        for pe in cgra.pes() {
            let mut row = BitSet::new(total);
            for other in 0..ii {
                if other != slot {
                    row.insert(other * n + pe.index());
                }
            }
            tier0.push(row);
        }
    }
    tiers.push(tier0);
    for d in 1..=routing.max_hops() {
        let mut tier = Vec::with_capacity(total);
        for _slot in 0..ii {
            for pe in cgra.pes() {
                let mut row = BitSet::new(total);
                for other in 0..ii {
                    let base = other * n;
                    for q in routing.tier(pe, d).iter() {
                        row.insert(base + q.index());
                    }
                }
                tier.push(row);
            }
        }
        tiers.push(tier);
    }
    Target::from_tiers(labels, tiers).with_capabilities(caps)
}

/// Outcome of one space-phase attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpaceOutcome {
    /// `map[v]` is the MRRG vertex index of node `v`.
    Found(Vec<usize>),
    /// The search space was exhausted without a monomorphism.
    Exhausted,
    /// The step budget ran out.
    LimitReached,
    /// The cancellation flag interrupted the search.
    Cancelled,
}

impl From<MonoOutcome> for SpaceOutcome {
    fn from(o: MonoOutcome) -> Self {
        match o {
            MonoOutcome::Found(map) => SpaceOutcome::Found(map),
            MonoOutcome::Exhausted => SpaceOutcome::Exhausted,
            MonoOutcome::LimitReached => SpaceOutcome::LimitReached,
            MonoOutcome::Cancelled => SpaceOutcome::Cancelled,
        }
    }
}

/// The reusable space-phase engine.
///
/// The paper's headline claim is that decoupling makes the space phase
/// cheap; rebuilding the MRRG [`Target`] for every attempt worked
/// against that — at II `k` on an `n`-PE CGRA each rebuild allocates
/// `n·k` bit rows of `n·k` bits. The engine caches the target per II
/// (the target depends only on the CGRA and the II, never on the time
/// solution or slack level), so all slack levels and all enumerated
/// time solutions at one II share a single construction.
///
/// Targets are handed out as [`Arc`]s: the portfolio mapper shares one
/// target across its worker threads without copying.
pub struct SpaceEngine<'a> {
    cgra: &'a Cgra,
    routing: RoutingModel,
    targets: HashMap<usize, Arc<Target>>,
    /// Targets constructed (cache misses) — observable amortisation.
    builds: usize,
}

impl<'a> SpaceEngine<'a> {
    /// An engine for `cgra` under the paper's one-hop routing model,
    /// with an empty target cache.
    pub fn new(cgra: &'a Cgra) -> Self {
        SpaceEngine::with_route_hops(cgra, 1)
    }

    /// An engine whose targets relate vertices up to `max_route_hops`
    /// topology hops apart.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= max_route_hops <= MAX_ROUTE_HOPS`.
    pub fn with_route_hops(cgra: &'a Cgra, max_route_hops: usize) -> Self {
        SpaceEngine {
            cgra,
            routing: RoutingModel::new(cgra, max_route_hops),
            targets: HashMap::new(),
            builds: 0,
        }
    }

    /// The CGRA this engine builds targets for.
    pub fn cgra(&self) -> &Cgra {
        self.cgra
    }

    /// The routing model the targets are assembled from.
    pub fn routing(&self) -> &RoutingModel {
        &self.routing
    }

    /// Number of targets constructed so far (cache misses).
    pub fn target_builds(&self) -> usize {
        self.builds
    }

    /// The monomorphism target for iteration interval `ii`, built on
    /// first use and cached for every later attempt at the same II.
    pub fn target(&mut self, ii: usize) -> Arc<Target> {
        if let Some(t) = self.targets.get(&ii) {
            return Arc::clone(t);
        }
        self.builds += 1;
        let t = Arc::new(build_target_with_routing(self.cgra, ii, &self.routing));
        self.targets.insert(ii, Arc::clone(&t));
        t
    }

    /// Drops cached targets for IIs other than `ii` (the mapper calls
    /// this when it escalates the II: earlier targets are never needed
    /// again, and large-CGRA rows are not free to keep).
    pub fn retain_ii(&mut self, ii: usize) {
        self.targets.retain(|&k, _| k == ii);
    }

    /// Runs the monomorphism search for one time solution against the
    /// cached target, with a step budget and an optional cancellation
    /// flag polled inside the DFS.
    ///
    /// Returns the outcome along with the number of search steps taken.
    pub fn search(
        &mut self,
        dfg: &Dfg,
        solution: &TimeSolution,
        step_limit: u64,
        cancel: Option<&CancelFlag>,
    ) -> (SpaceOutcome, u64) {
        let target = self.target(solution.ii());
        let pattern = build_pattern(dfg, solution);
        let mut config = SearchConfig::steps(step_limit);
        if let Some(flag) = cancel {
            config = config.with_cancel_flag(flag.clone());
        }
        let mut searcher = Searcher::with_config(&pattern, &target, config);
        let outcome = SpaceOutcome::from(searcher.run());
        (outcome, searcher.stats().steps)
    }
}

/// Runs the monomorphism search for one time solution.
///
/// Returns the found map along with the number of search steps taken.
/// One-shot convenience over [`SpaceEngine`] (the target is built and
/// dropped); callers with several attempts at one II should hold a
/// [`SpaceEngine`] instead.
pub fn space_search(
    dfg: &Dfg,
    cgra: &Cgra,
    solution: &TimeSolution,
    step_limit: u64,
    cancel: Option<&CancelFlag>,
) -> (SpaceOutcome, u64) {
    SpaceEngine::new(cgra).search(dfg, solution, step_limit, cancel)
}

/// Verifies that target construction agrees with the [`Mrrg`]
/// reachability oracle at the given route bound (used by tests; the
/// target is the performance-oriented materialisation of the same
/// graph).
pub fn target_matches_mrrg(cgra: &Cgra, ii: usize, max_route_hops: usize) -> bool {
    let target = build_target(cgra, ii, max_route_hops);
    let mrrg = Mrrg::with_route_hops(cgra, ii, max_route_hops);
    if target.num_vertices() != mrrg.num_vertices() {
        return false;
    }
    for a in 0..target.num_vertices() {
        let va = mrrg.vertex_at(a);
        if target.label(a) as usize != mrrg.label(va) {
            return false;
        }
        for b in 0..target.num_vertices() {
            if target.adjacent(a, b) != mrrg.adjacent(va, mrrg.vertex_at(b)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_dfg::examples::running_example;
    use cgra_sched::{TimeSolver, TimeSolverConfig};

    #[test]
    fn target_agrees_with_mrrg_oracle() {
        for topo in [Topology::Torus, Topology::Mesh] {
            let cgra = Cgra::with_topology(2, 2, topo).unwrap();
            assert!(target_matches_mrrg(&cgra, 3, 1), "{topo} 2x2 II=3");
        }
        let cgra = Cgra::new(3, 3).unwrap();
        assert!(target_matches_mrrg(&cgra, 2, 1), "torus 3x3 II=2");
    }

    #[test]
    fn routed_target_agrees_with_mrrg_oracle() {
        for topo in [Topology::Torus, Topology::Mesh, Topology::Diagonal] {
            let cgra = Cgra::with_topology(3, 3, topo).unwrap();
            for k in [2, 3] {
                assert!(target_matches_mrrg(&cgra, 2, k), "{topo} 3x3 II=2 k={k}");
            }
        }
    }

    #[test]
    fn routed_target_records_route_lengths() {
        // 3x3 mesh, II=2: corner PE0 to centre PE4 is 2 hops.
        let cgra = Cgra::with_topology(3, 3, Topology::Mesh).unwrap();
        let n = cgra.num_pes();
        let t = build_target(&cgra, 2, 2);
        assert_eq!(t.route_length(0, 1), Some(1), "same slot, adjacent");
        assert_eq!(t.route_length(0, 4), Some(2), "same slot, knight");
        assert_eq!(t.route_length(0, n), Some(0), "held value across slots");
        assert_eq!(t.route_length(0, n + 4), Some(2), "cross slot, 2 hops");
        assert_eq!(t.route_length(0, 8), None, "far corner beyond k=2");
        // k=1 targets only relate adjacency; the same pair vanishes.
        let t1 = build_target(&cgra, 2, 1);
        assert!(!t1.adjacent(0, 4));
        assert_eq!(t1.route_length(0, 4), None);
    }

    #[test]
    fn pattern_drops_direction_and_self_edges() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let p = build_pattern(&dfg, &sol);
        assert_eq!(p.num_vertices(), 14);
        // 15 directed edges, no duplicates between the same pair, no
        // self edges in the running example.
        assert_eq!(p.num_edges(), 15);
        for v in dfg.nodes() {
            assert_eq!(p.label(v.index()) as usize, sol.slot(v));
        }
    }

    #[test]
    fn running_example_space_solution_exists() {
        // The paper's Fig. 4: a monomorphism exists for the running
        // example at II = 4 on the 2×2 CGRA.
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let (outcome, steps) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        assert!(matches!(outcome, SpaceOutcome::Found(_)), "{outcome:?}");
        assert!(steps > 0);
    }

    #[test]
    fn engine_caches_target_per_ii() {
        let cgra = Cgra::new(4, 4).unwrap();
        let mut engine = SpaceEngine::new(&cgra);
        let a = engine.target(3);
        let b = engine.target(3);
        assert!(Arc::ptr_eq(&a, &b), "same II shares one target");
        assert_eq!(engine.target_builds(), 1);
        let c = engine.target(4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(engine.target_builds(), 2);
        engine.retain_ii(4);
        let a2 = engine.target(3);
        assert!(
            !Arc::ptr_eq(&a, &a2),
            "retain_ii(4) evicted the II=3 target"
        );
        assert_eq!(engine.target_builds(), 3);
    }

    #[test]
    fn engine_search_matches_one_shot_search() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let mut engine = SpaceEngine::new(&cgra);
        let (a, steps_a) = engine.search(&dfg, &sol, 1_000_000, None);
        let (b, steps_b) = engine.search(&dfg, &sol, 1_000_000, None);
        let (c, steps_c) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        assert_eq!(a, b, "engine search is deterministic across reuse");
        assert_eq!(a, c, "cached target gives the same result as a rebuild");
        assert_eq!(steps_a, steps_b);
        assert_eq!(steps_a, steps_c);
        assert_eq!(
            engine.target_builds(),
            1,
            "second attempt reused the target"
        );
    }

    #[test]
    fn engine_search_observes_cancel_flag() {
        let dfg = running_example();
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        let mut engine = SpaceEngine::new(&cgra);
        let (outcome, steps) = engine.search(&dfg, &sol, 1_000_000, Some(&flag));
        assert_eq!(outcome, SpaceOutcome::Cancelled);
        assert_eq!(steps, 0);
    }

    #[test]
    fn heterogeneous_target_filters_domains() {
        use cgra_arch::{CapabilityProfile, OpClass};
        use cgra_dfg::{DfgBuilder, Operation as Op};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let ld = b.load("ld", x);
        b.output("o", ld);
        let dfg = b.build().unwrap();
        let cgra = Cgra::new(3, 3)
            .unwrap()
            .with_capability_profile(CapabilityProfile::MemLeftColumn);
        let cfg = TimeSolverConfig::for_cgra(&cgra).with_window_slack(1);
        let sol = TimeSolver::new(&dfg, 2, cfg).unwrap().solve().unwrap();
        let (outcome, _) = space_search(&dfg, &cgra, &sol, 1_000_000, None);
        let SpaceOutcome::Found(map) = outcome else {
            panic!("mem-left-column hosts one load: {outcome:?}");
        };
        // The load must sit in the memory column (PE index % 3 == 0).
        let n = cgra.num_pes();
        let load_pe = map[1] % n;
        assert_eq!(load_pe % 3, 0, "load on PE{load_pe} outside the mem column");
        assert_eq!(dfg.op(cgra_dfg::NodeId::from_index(1)), Op::Load);
        assert_eq!(cgra.providers(OpClass::Mem), 3);
    }

    #[test]
    fn homogeneous_target_capabilities_accept_everything() {
        // On a homogeneous grid every target vertex carries the full
        // mask, so requirement filtering removes nothing and the search
        // is unchanged.
        let cgra = Cgra::new(2, 2).unwrap();
        let t = build_target(&cgra, 2, 1);
        for v in 0..t.num_vertices() {
            assert_eq!(t.capability(v), cgra_arch::OpClassSet::all().bits() as u32);
        }
    }

    #[test]
    fn target_sizes() {
        let cgra = Cgra::new(4, 4).unwrap();
        let t = build_target(&cgra, 5, 1);
        assert_eq!(t.num_vertices(), 80);
        // Uniform torus: same-slot degree 4, cross-slot 5 each.
        assert_eq!(t.degree(0), 4 + 4 * 5);
        // k=2 on the 4x4 torus adds the 6 distance-2 PEs (2 straight
        // wraps + 4 diagonal steps): 10 reachable per slot.
        let t2 = build_target(&cgra, 5, 2);
        assert_eq!(t2.degree(0), 10 + 4 * 11);
    }
}
