//! The space-time mapping produced by the mapper, with full validation.

use serde::{Deserialize, Serialize};

use cgra_arch::{Cgra, PeId, MAX_ROUTE_HOPS};
use cgra_dfg::{Dfg, EdgeKind, NodeId};

use crate::MappingError;

/// Where and when one DFG node executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The processing element.
    pub pe: PeId,
    /// The kernel slot (`time mod II`).
    pub slot: usize,
    /// The absolute schedule time within the unrolled schedule.
    pub time: usize,
}

/// A complete space-time mapping: one [`Placement`] per DFG node, for a
/// kernel of `II` cycles.
///
/// Produced by [`crate::DecoupledMapper`]; check any externally supplied
/// mapping with [`Mapping::validate`] (or [`Mapping::validate_routed`]
/// when it was produced under a k-hop routing model).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    dfg_name: String,
    ii: usize,
    placements: Vec<Placement>,
    /// Chosen route length per DFG edge (in `dfg.edges()` order;
    /// self-dependences count 0). Empty on mappings produced under the
    /// classic one-hop model, so their wire form — and the golden
    /// snapshots locking it — is unchanged.
    route_hops: Vec<usize>,
}

impl Mapping {
    /// Assembles a mapping from parts (used by the mapper and by tests;
    /// run [`Mapping::validate`] to check it).
    pub fn new(dfg_name: impl Into<String>, ii: usize, placements: Vec<Placement>) -> Self {
        Mapping {
            dfg_name: dfg_name.into(),
            ii,
            placements,
            route_hops: Vec::new(),
        }
    }

    /// Attaches the chosen route length of every DFG edge (in
    /// `dfg.edges()` order). The mapper records these only under a
    /// routing model wider than one hop.
    #[must_use]
    pub fn with_route_hops(mut self, route_hops: Vec<usize>) -> Self {
        self.route_hops = route_hops;
        self
    }

    /// Chosen route length per DFG edge; empty when the mapping was
    /// produced under the one-hop model (no routing decisions to
    /// record).
    pub fn route_hops(&self) -> &[usize] {
        &self.route_hops
    }

    /// The route bound this mapping claims for itself: the longest
    /// recorded route, or 1 for one-hop mappings (empty
    /// [`route_hops`](Self::route_hops)). Clamped into
    /// `1..=`[`MAX_ROUTE_HOPS`] so hostile wire data cannot smuggle an
    /// unbounded claim past [`validate_routed`](Self::validate_routed).
    pub fn declared_route_bound(&self) -> usize {
        self.route_hops
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .clamp(1, MAX_ROUTE_HOPS)
    }

    /// The name of the DFG this mapping is for.
    pub fn dfg_name(&self) -> &str {
        &self.dfg_name
    }

    /// The iteration interval achieved.
    pub fn ii(&self) -> usize {
        self.ii
    }

    /// The placement of a node.
    pub fn placement(&self, v: NodeId) -> Placement {
        self.placements[v.index()]
    }

    /// The PE of a node.
    pub fn pe(&self, v: NodeId) -> PeId {
        self.placements[v.index()].pe
    }

    /// The kernel slot of a node.
    pub fn slot(&self, v: NodeId) -> usize {
        self.placements[v.index()].slot
    }

    /// The absolute schedule time of a node.
    pub fn time(&self, v: NodeId) -> usize {
        self.placements[v.index()].time
    }

    /// All placements, indexed by node.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The schedule length (largest time + 1): prologue + one kernel.
    pub fn schedule_length(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.time + 1)
            .max()
            .unwrap_or(0)
    }

    /// Checks every mapping invariant under the paper's one-hop
    /// routing model; equivalent to
    /// [`Mapping::validate_routed`]`(dfg, cgra, 1)`. See there for the
    /// invariant list.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, dfg: &Dfg, cgra: &Cgra) -> Result<(), MappingError> {
        self.validate_routed(dfg, cgra, 1)
    }

    /// Checks every mapping invariant against the DFG and CGRA under a
    /// `max_route_hops`-hop routing model:
    ///
    /// * mono1 — no two nodes share `(PE, slot)`;
    /// * mono2 — `slot == time mod II` for every node;
    /// * capability — every node's PE provides the node's operation
    ///   class (trivially true on homogeneous grids);
    /// * mono3 / routing — every dependence's endpoints lie on the same
    ///   PE or within `max_route_hops` topology hops (the consumer can
    ///   reach the producer's register file through at most `k - 1`
    ///   forwarding hops);
    /// * modulo-schedule timing of every data and loop-carried edge.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= max_route_hops <= MAX_ROUTE_HOPS`.
    pub fn validate_routed(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        max_route_hops: usize,
    ) -> Result<(), MappingError> {
        assert!(
            (1..=MAX_ROUTE_HOPS).contains(&max_route_hops),
            "max_route_hops must be in 1..={MAX_ROUTE_HOPS}"
        );
        if self.placements.len() != dfg.num_nodes() {
            return Err(MappingError::WrongArity {
                got: self.placements.len(),
                expected: dfg.num_nodes(),
            });
        }
        for v in dfg.nodes() {
            let p = self.placement(v);
            if p.pe.index() >= cgra.num_pes() {
                return Err(MappingError::UnknownPe { node: v });
            }
            if p.slot != p.time % self.ii {
                return Err(MappingError::LabelMismatch { node: v });
            }
            let class = dfg.op(v).op_class();
            if !cgra.supports(p.pe, class) {
                return Err(MappingError::IncapablePe { node: v, class });
            }
        }
        // mono1: injectivity over (pe, slot).
        let mut seen = std::collections::HashMap::new();
        for v in dfg.nodes() {
            let p = self.placement(v);
            if let Some(&other) = seen.get(&(p.pe, p.slot)) {
                return Err(MappingError::NotInjective { a: other, b: v });
            }
            seen.insert((p.pe, p.slot), v);
        }
        // Edges: timing + reachability.
        for e in dfg.edges() {
            if e.src == e.dst {
                continue; // own register file, always readable
            }
            let ps = self.placement(e.src);
            let pd = self.placement(e.dst);
            let ok_time = match e.kind {
                EdgeKind::Data => pd.time as i64 > ps.time as i64,
                EdgeKind::LoopCarried { distance } => {
                    pd.time as i64 >= ps.time as i64 + 1 - (distance as i64) * (self.ii as i64)
                }
            };
            if !ok_time {
                return Err(MappingError::DependenceViolated {
                    src: e.src,
                    dst: e.dst,
                });
            }
            let within_reach = match cgra.hop_distance(ps.pe, pd.pe) {
                Some(0) => true, // own register file, held across slots
                Some(d) => d <= max_route_hops,
                None => false,
            };
            if !within_reach {
                return Err(MappingError::Unreachable {
                    src: e.src,
                    dst: e.dst,
                });
            }
            // Same-slot edges additionally require distinct, adjacent
            // PEs — same PE would collide in the kernel.
            if ps.slot == pd.slot && ps.pe == pd.pe {
                return Err(MappingError::NotInjective { a: e.src, b: e.dst });
            }
        }
        Ok(())
    }

    /// Per-PE operation counts (kernel occupancy).
    pub fn pe_occupancy(&self, cgra: &Cgra) -> Vec<usize> {
        let mut occ = vec![0usize; cgra.num_pes()];
        for p in &self.placements {
            occ[p.pe.index()] += 1;
        }
        occ
    }
}

// Hand-written so that `route_hops` is omitted when empty: every
// mapping produced under the classic one-hop model keeps the exact
// pre-routing wire form (the golden snapshots assert this byte for
// byte), and pre-routing JSON decodes into a mapping with no recorded
// routes.
impl Serialize for Mapping {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("dfg_name".to_string(), self.dfg_name.to_value()),
            ("ii".to_string(), self.ii.to_value()),
            ("placements".to_string(), self.placements.to_value()),
        ];
        if !self.route_hops.is_empty() {
            fields.push(("route_hops".to_string(), self.route_hops.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for Mapping {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("map", v))?;
        let route_hops = match v.get("route_hops").filter(|f| **f != serde::Value::Null) {
            Some(f) => Vec::<usize>::from_value(f)
                .map_err(|e| serde::de::Error::custom(format!("field `route_hops`: {e}")))?,
            None => Vec::new(),
        };
        Ok(Mapping {
            dfg_name: serde::de::field(entries, "dfg_name")?,
            ii: serde::de::field(entries, "ii")?,
            placements: serde::de::field(entries, "placements")?,
            route_hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::{DfgBuilder, Operation as Op};

    fn tiny() -> (Dfg, Cgra) {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.unary("y", Op::Neg, x);
        b.output("o", y);
        (b.build().unwrap(), Cgra::new(2, 2).unwrap())
    }

    fn place(pe: usize, time: usize, ii: usize) -> Placement {
        Placement {
            pe: PeId::from_index(pe),
            slot: time % ii,
            time,
        }
    }

    #[test]
    fn valid_chain_mapping() {
        let (dfg, cgra) = tiny();
        // x on PE0@0, y on PE1@1, o on PE0@2 (PE0 and PE1 adjacent).
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        m.validate(&dfg, &cgra).unwrap();
        assert_eq!(m.schedule_length(), 3);
        assert_eq!(m.pe_occupancy(&cgra), vec![2, 1, 0, 0]);
    }

    #[test]
    fn detects_non_injective() {
        let (dfg, cgra) = tiny();
        // x and o both on PE0 slot 0 (times 0 and 3, ii 3).
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 3, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::NotInjective { .. })
        ));
    }

    #[test]
    fn detects_label_mismatch() {
        let (dfg, cgra) = tiny();
        let mut bad = place(1, 1, 3);
        bad.slot = 2;
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3), bad, place(0, 2, 3)]);
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::LabelMismatch {
                node: NodeId::from_index(1)
            })
        );
    }

    #[test]
    fn detects_unreachable_pes() {
        let (dfg, cgra) = tiny();
        // PE0 and PE3 are diagonal: not adjacent on a 2x2 torus.
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(3, 1, 3), place(3, 2, 3)],
        );
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::Unreachable {
                src: NodeId::from_index(0),
                dst: NodeId::from_index(1)
            })
        );
    }

    #[test]
    fn detects_timing_violation() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 2, 3), place(1, 1, 3), place(1, 2, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn detects_wrong_arity() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3)]);
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::WrongArity { .. })
        ));
    }

    #[test]
    fn detects_unknown_pe() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(9, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::UnknownPe { .. })
        ));
    }

    #[test]
    fn loop_carried_timing_uses_distance() {
        let mut b = DfgBuilder::new();
        let p = b.phi("p", 0);
        let s = b.unary("s", Op::Neg, p);
        b.loop_carried(s, p, 1);
        let dfg = b.build().unwrap();
        let cgra = Cgra::new(2, 2).unwrap();
        // II = 2: s at time 1, phi at time 0: 0 >= 1 + 1 - 2 holds.
        let m = Mapping::new("acc", 2, vec![place(0, 0, 2), place(1, 1, 2)]);
        m.validate(&dfg, &cgra).unwrap();
        // II = 1 would need 0 >= 1 + 1 - 1 = 1: violated.
        let m = Mapping::new(
            "acc",
            1,
            vec![
                Placement {
                    pe: PeId::from_index(0),
                    slot: 0,
                    time: 0,
                },
                Placement {
                    pe: PeId::from_index(1),
                    slot: 0,
                    time: 1,
                },
            ],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn detects_incapable_pe() {
        use cgra_arch::{OpClass, OpClassSet};
        // A load placed on an ALU-only PE.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let ld = b.load("ld", x);
        b.output("o", ld);
        let dfg = b.build().unwrap();
        let mut caps = vec![OpClassSet::all(); 4];
        caps[1] = OpClassSet::only(OpClass::Alu);
        let cgra = Cgra::new(2, 2).unwrap().with_pe_capabilities(caps).unwrap();
        // x on PE0@0, ld on PE1@1 (ALU-only!), o on PE0@2.
        let m = Mapping::new(
            "het",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::IncapablePe {
                node: NodeId::from_index(1),
                class: OpClass::Mem
            })
        );
        // The same placement on PE2 (full capability) is fine.
        let m = Mapping::new(
            "het",
            3,
            vec![place(0, 0, 3), place(2, 1, 3), place(0, 2, 3)],
        );
        m.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3)]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn route_hops_roundtrip_and_wire_compat() {
        // Routed mappings carry their per-edge route lengths...
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3)]).with_route_hops(vec![0, 2, 1]);
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("route_hops"));
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(back.route_hops(), &[0, 2, 1]);
        assert_eq!(back.declared_route_bound(), 2);
        assert_eq!(m, back);
        // ...one-hop mappings keep the pre-routing wire form...
        let plain = Mapping::new("tiny", 3, vec![place(0, 0, 3)]);
        assert!(!serde_json::to_string(&plain)
            .unwrap()
            .contains("route_hops"));
        // ...and pre-routing JSON still decodes.
        let old = r#"{"dfg_name":"tiny","ii":3,"placements":[{"pe":0,"slot":0,"time":0}]}"#;
        let back: Mapping = serde_json::from_str(old).unwrap();
        assert_eq!(back, plain);
        assert!(back.route_hops().is_empty());
        assert_eq!(back.declared_route_bound(), 1);
    }

    #[test]
    fn validate_routed_widens_reachability() {
        let (dfg, cgra) = tiny();
        // PE0 and PE3 are diagonal on the 2x2 torus: distance 2.
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(3, 1, 3), place(3, 2, 3)],
        );
        assert!(matches!(
            m.validate_routed(&dfg, &cgra, 1),
            Err(MappingError::Unreachable { .. })
        ));
        m.validate_routed(&dfg, &cgra, 2).unwrap();
        // validate() is exactly the k=1 case.
        assert_eq!(m.validate(&dfg, &cgra), m.validate_routed(&dfg, &cgra, 1));
    }
}
