//! The space-time mapping produced by the mapper, with full validation.

use serde::{Deserialize, Serialize};

use cgra_arch::{Cgra, PeId};
use cgra_dfg::{Dfg, EdgeKind, NodeId};

use crate::MappingError;

/// Where and when one DFG node executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The processing element.
    pub pe: PeId,
    /// The kernel slot (`time mod II`).
    pub slot: usize,
    /// The absolute schedule time within the unrolled schedule.
    pub time: usize,
}

/// A complete space-time mapping: one [`Placement`] per DFG node, for a
/// kernel of `II` cycles.
///
/// Produced by [`crate::DecoupledMapper`]; check any externally supplied
/// mapping with [`Mapping::validate`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    dfg_name: String,
    ii: usize,
    placements: Vec<Placement>,
}

impl Mapping {
    /// Assembles a mapping from parts (used by the mapper and by tests;
    /// run [`Mapping::validate`] to check it).
    pub fn new(dfg_name: impl Into<String>, ii: usize, placements: Vec<Placement>) -> Self {
        Mapping {
            dfg_name: dfg_name.into(),
            ii,
            placements,
        }
    }

    /// The name of the DFG this mapping is for.
    pub fn dfg_name(&self) -> &str {
        &self.dfg_name
    }

    /// The iteration interval achieved.
    pub fn ii(&self) -> usize {
        self.ii
    }

    /// The placement of a node.
    pub fn placement(&self, v: NodeId) -> Placement {
        self.placements[v.index()]
    }

    /// The PE of a node.
    pub fn pe(&self, v: NodeId) -> PeId {
        self.placements[v.index()].pe
    }

    /// The kernel slot of a node.
    pub fn slot(&self, v: NodeId) -> usize {
        self.placements[v.index()].slot
    }

    /// The absolute schedule time of a node.
    pub fn time(&self, v: NodeId) -> usize {
        self.placements[v.index()].time
    }

    /// All placements, indexed by node.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The schedule length (largest time + 1): prologue + one kernel.
    pub fn schedule_length(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.time + 1)
            .max()
            .unwrap_or(0)
    }

    /// Checks every mapping invariant against the DFG and CGRA:
    ///
    /// * mono1 — no two nodes share `(PE, slot)`;
    /// * mono2 — `slot == time mod II` for every node;
    /// * capability — every node's PE provides the node's operation
    ///   class (trivially true on homogeneous grids);
    /// * mono3 / routing — every dependence's endpoints lie on the same
    ///   or adjacent PEs (the consumer can read the producer's register
    ///   file);
    /// * modulo-schedule timing of every data and loop-carried edge.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, dfg: &Dfg, cgra: &Cgra) -> Result<(), MappingError> {
        if self.placements.len() != dfg.num_nodes() {
            return Err(MappingError::WrongArity {
                got: self.placements.len(),
                expected: dfg.num_nodes(),
            });
        }
        for v in dfg.nodes() {
            let p = self.placement(v);
            if p.pe.index() >= cgra.num_pes() {
                return Err(MappingError::UnknownPe { node: v });
            }
            if p.slot != p.time % self.ii {
                return Err(MappingError::LabelMismatch { node: v });
            }
            let class = dfg.op(v).op_class();
            if !cgra.supports(p.pe, class) {
                return Err(MappingError::IncapablePe { node: v, class });
            }
        }
        // mono1: injectivity over (pe, slot).
        let mut seen = std::collections::HashMap::new();
        for v in dfg.nodes() {
            let p = self.placement(v);
            if let Some(&other) = seen.get(&(p.pe, p.slot)) {
                return Err(MappingError::NotInjective { a: other, b: v });
            }
            seen.insert((p.pe, p.slot), v);
        }
        // Edges: timing + reachability.
        for e in dfg.edges() {
            if e.src == e.dst {
                continue; // own register file, always readable
            }
            let ps = self.placement(e.src);
            let pd = self.placement(e.dst);
            let ok_time = match e.kind {
                EdgeKind::Data => pd.time as i64 > ps.time as i64,
                EdgeKind::LoopCarried { distance } => {
                    pd.time as i64 >= ps.time as i64 + 1 - (distance as i64) * (self.ii as i64)
                }
            };
            if !ok_time {
                return Err(MappingError::DependenceViolated {
                    src: e.src,
                    dst: e.dst,
                });
            }
            if !cgra.reachable(ps.pe, pd.pe) {
                return Err(MappingError::Unreachable {
                    src: e.src,
                    dst: e.dst,
                });
            }
            // Same-slot edges additionally require distinct, adjacent
            // PEs — same PE would collide in the kernel.
            if ps.slot == pd.slot && ps.pe == pd.pe {
                return Err(MappingError::NotInjective { a: e.src, b: e.dst });
            }
        }
        Ok(())
    }

    /// Per-PE operation counts (kernel occupancy).
    pub fn pe_occupancy(&self, cgra: &Cgra) -> Vec<usize> {
        let mut occ = vec![0usize; cgra.num_pes()];
        for p in &self.placements {
            occ[p.pe.index()] += 1;
        }
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::{DfgBuilder, Operation as Op};

    fn tiny() -> (Dfg, Cgra) {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.unary("y", Op::Neg, x);
        b.output("o", y);
        (b.build().unwrap(), Cgra::new(2, 2).unwrap())
    }

    fn place(pe: usize, time: usize, ii: usize) -> Placement {
        Placement {
            pe: PeId::from_index(pe),
            slot: time % ii,
            time,
        }
    }

    #[test]
    fn valid_chain_mapping() {
        let (dfg, cgra) = tiny();
        // x on PE0@0, y on PE1@1, o on PE0@2 (PE0 and PE1 adjacent).
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        m.validate(&dfg, &cgra).unwrap();
        assert_eq!(m.schedule_length(), 3);
        assert_eq!(m.pe_occupancy(&cgra), vec![2, 1, 0, 0]);
    }

    #[test]
    fn detects_non_injective() {
        let (dfg, cgra) = tiny();
        // x and o both on PE0 slot 0 (times 0 and 3, ii 3).
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 3, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::NotInjective { .. })
        ));
    }

    #[test]
    fn detects_label_mismatch() {
        let (dfg, cgra) = tiny();
        let mut bad = place(1, 1, 3);
        bad.slot = 2;
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3), bad, place(0, 2, 3)]);
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::LabelMismatch {
                node: NodeId::from_index(1)
            })
        );
    }

    #[test]
    fn detects_unreachable_pes() {
        let (dfg, cgra) = tiny();
        // PE0 and PE3 are diagonal: not adjacent on a 2x2 torus.
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 0, 3), place(3, 1, 3), place(3, 2, 3)],
        );
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::Unreachable {
                src: NodeId::from_index(0),
                dst: NodeId::from_index(1)
            })
        );
    }

    #[test]
    fn detects_timing_violation() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(0, 2, 3), place(1, 1, 3), place(1, 2, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn detects_wrong_arity() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3)]);
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::WrongArity { .. })
        ));
    }

    #[test]
    fn detects_unknown_pe() {
        let (dfg, cgra) = tiny();
        let m = Mapping::new(
            "tiny",
            3,
            vec![place(9, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::UnknownPe { .. })
        ));
    }

    #[test]
    fn loop_carried_timing_uses_distance() {
        let mut b = DfgBuilder::new();
        let p = b.phi("p", 0);
        let s = b.unary("s", Op::Neg, p);
        b.loop_carried(s, p, 1);
        let dfg = b.build().unwrap();
        let cgra = Cgra::new(2, 2).unwrap();
        // II = 2: s at time 1, phi at time 0: 0 >= 1 + 1 - 2 holds.
        let m = Mapping::new("acc", 2, vec![place(0, 0, 2), place(1, 1, 2)]);
        m.validate(&dfg, &cgra).unwrap();
        // II = 1 would need 0 >= 1 + 1 - 1 = 1: violated.
        let m = Mapping::new(
            "acc",
            1,
            vec![
                Placement {
                    pe: PeId::from_index(0),
                    slot: 0,
                    time: 0,
                },
                Placement {
                    pe: PeId::from_index(1),
                    slot: 0,
                    time: 1,
                },
            ],
        );
        assert!(matches!(
            m.validate(&dfg, &cgra),
            Err(MappingError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn detects_incapable_pe() {
        use cgra_arch::{OpClass, OpClassSet};
        // A load placed on an ALU-only PE.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let ld = b.load("ld", x);
        b.output("o", ld);
        let dfg = b.build().unwrap();
        let mut caps = vec![OpClassSet::all(); 4];
        caps[1] = OpClassSet::only(OpClass::Alu);
        let cgra = Cgra::new(2, 2).unwrap().with_pe_capabilities(caps).unwrap();
        // x on PE0@0, ld on PE1@1 (ALU-only!), o on PE0@2.
        let m = Mapping::new(
            "het",
            3,
            vec![place(0, 0, 3), place(1, 1, 3), place(0, 2, 3)],
        );
        assert_eq!(
            m.validate(&dfg, &cgra),
            Err(MappingError::IncapablePe {
                node: NodeId::from_index(1),
                class: OpClass::Mem
            })
        );
        // The same placement on PE2 (full capability) is fine.
        let m = Mapping::new(
            "het",
            3,
            vec![place(0, 0, 3), place(2, 1, 3), place(0, 2, 3)],
        );
        m.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let m = Mapping::new("tiny", 3, vec![place(0, 0, 3)]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
