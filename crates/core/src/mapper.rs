//! The decoupled space/time mapper (paper §IV).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use cgra_base::CancelFlag;

use cgra_arch::Cgra;
use cgra_dfg::Dfg;
use cgra_sched::{
    ims_schedule, min_ii, SolveOutcome, TimeSolution, TimeSolver, TimeSolverConfig, TimeSolverError,
};

use crate::config::TimeStrategy;
use crate::space::{space_search, SpaceOutcome};
use crate::{MapError, MapperConfig, Mapping, Placement};

/// A successful mapping together with search statistics.
#[derive(Clone, Debug)]
pub struct MapResult {
    /// The space-time mapping.
    pub mapping: Mapping,
    /// How the search went (phase timings, attempts, II escalations).
    pub stats: MapStats,
}

/// Search statistics of one [`DecoupledMapper::map`] call.
///
/// The paper's Table III reports the time and space phases separately;
/// [`MapStats::time_phase_seconds`] and [`MapStats::space_phase_seconds`]
/// are those columns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MapStats {
    /// The lower bound `mII` the search started from.
    pub mii: usize,
    /// The achieved iteration interval.
    pub achieved_ii: usize,
    /// Wall-clock total.
    pub total_seconds: f64,
    /// Wall-clock spent in the SMT time search.
    pub time_phase_seconds: f64,
    /// Wall-clock spent in monomorphism search (including MRRG
    /// construction).
    pub space_phase_seconds: f64,
    /// Time solutions produced by the SMT layer.
    pub time_solutions: usize,
    /// Monomorphism searches attempted.
    pub space_attempts: usize,
    /// Total monomorphism search steps.
    pub mono_steps: u64,
    /// Number of II values attempted.
    pub iis_tried: usize,
    /// Window slack of the successful attempt.
    pub window_slack: usize,
}

/// The mapper: SMT time solve, then monomorphism space solve, with
/// fall-back enumeration and II escalation.
///
/// See the crate-level example.
#[derive(Clone, Debug)]
pub struct DecoupledMapper<'a> {
    cgra: &'a Cgra,
    config: MapperConfig,
    cancel: Option<CancelFlag>,
}

impl<'a> DecoupledMapper<'a> {
    /// A mapper for `cgra` with the paper-faithful default
    /// configuration.
    pub fn new(cgra: &'a Cgra) -> Self {
        DecoupledMapper {
            cgra,
            config: MapperConfig::default(),
            cancel: None,
        }
    }

    /// A mapper with an explicit configuration.
    pub fn with_config(cgra: &'a Cgra, config: MapperConfig) -> Self {
        DecoupledMapper {
            cgra,
            config,
            cancel: None,
        }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Installs a cooperative cancellation flag checked between solver
    /// calls and inside the SAT core.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(CancelFlag::from_arc(flag));
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// Maps `dfg` onto the CGRA.
    ///
    /// Searches II values from `mII` upward; for each II tries window
    /// slacks `0..=max_window_slack`, and for each time solution runs
    /// the monomorphism search, enumerating alternative schedules when
    /// the space phase fails (paper §IV-D guarantees this is rare).
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidDfg`] for malformed graphs,
    /// [`MapError::NoSolution`] when the II range is exhausted, and
    /// [`MapError::Timeout`] when interrupted.
    pub fn map(&self, dfg: &Dfg) -> Result<MapResult, MapError> {
        dfg.validate()?;
        let start = Instant::now();
        let mii = min_ii(dfg, self.cgra);
        let max_ii = self.config.max_ii.unwrap_or(mii + 16).max(mii);
        let mut stats = MapStats {
            mii,
            ..MapStats::default()
        };

        for ii in mii..=max_ii {
            stats.iis_tried += 1;
            for slack in 0..=self.config.max_window_slack {
                if self.cancelled() {
                    return Err(MapError::Timeout { ii });
                }
                let mut ts_config = TimeSolverConfig::for_cgra(self.cgra)
                    .with_window_slack(slack)
                    .with_strict_connectivity(self.config.strict_connectivity);
                ts_config.capacity_constraints = self.config.capacity_constraints;
                ts_config.connectivity_constraints = self.config.connectivity_constraints;
                if let Some(b) = &self.config.time_budget {
                    ts_config = ts_config.with_budget(b.clone());
                }

                if self.config.time_strategy == TimeStrategy::Heuristic {
                    // Heuristic time phase: one IMS attempt per
                    // (II, slack) level, no enumeration.
                    let t0 = Instant::now();
                    let sol = ims_schedule(dfg, ii, &ts_config);
                    stats.time_phase_seconds += t0.elapsed().as_secs_f64();
                    if let Some(sol) = sol {
                        stats.time_solutions += 1;
                        let t1 = Instant::now();
                        let (space, steps) =
                            space_search(dfg, self.cgra, &sol, self.config.mono_step_limit);
                        stats.space_phase_seconds += t1.elapsed().as_secs_f64();
                        stats.space_attempts += 1;
                        stats.mono_steps += steps;
                        if let SpaceOutcome::Found(map) = space {
                            return Ok(self.finish(dfg, &sol, map, ii, slack, start, stats));
                        }
                    }
                    continue;
                }

                let t0 = Instant::now();
                let mut solver = match TimeSolver::new(dfg, ii, ts_config) {
                    Ok(s) => s,
                    Err(TimeSolverError::Dfg(e)) => return Err(MapError::InvalidDfg(e)),
                    Err(_) => unreachable!("ii and capacity are positive"),
                };
                if let Some(flag) = &self.cancel {
                    solver.set_cancel_flag(flag.arc());
                }
                let mut outcome = solver.solve_outcome();
                stats.time_phase_seconds += t0.elapsed().as_secs_f64();

                let mut tries = 0usize;
                loop {
                    match outcome {
                        SolveOutcome::Solution(sol) => {
                            tries += 1;
                            stats.time_solutions += 1;
                            let t1 = Instant::now();
                            let (space, steps) =
                                space_search(dfg, self.cgra, &sol, self.config.mono_step_limit);
                            stats.space_phase_seconds += t1.elapsed().as_secs_f64();
                            stats.space_attempts += 1;
                            stats.mono_steps += steps;
                            if let SpaceOutcome::Found(map) = space {
                                return Ok(self.finish(dfg, &sol, map, ii, slack, start, stats));
                            }
                            if tries >= self.config.max_time_solutions {
                                break;
                            }
                            let t2 = Instant::now();
                            outcome = solver.next_outcome();
                            stats.time_phase_seconds += t2.elapsed().as_secs_f64();
                        }
                        SolveOutcome::Unsat => break,
                        SolveOutcome::Timeout => return Err(MapError::Timeout { ii }),
                    }
                }
            }
        }
        Err(MapError::NoSolution { mii, max_ii })
    }

    /// Converts a found monomorphism into the final [`Mapping`] and
    /// closes out the statistics.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        dfg: &Dfg,
        sol: &TimeSolution,
        map: Vec<usize>,
        ii: usize,
        slack: usize,
        start: Instant,
        mut stats: MapStats,
    ) -> MapResult {
        let n = self.cgra.num_pes();
        let placements: Vec<Placement> = dfg
            .nodes()
            .map(|v| {
                let idx = map[v.index()];
                debug_assert_eq!(idx / n, sol.slot(v));
                Placement {
                    pe: cgra_arch::PeId::from_index(idx % n),
                    slot: idx / n,
                    time: sol.time(v),
                }
            })
            .collect();
        stats.achieved_ii = ii;
        stats.window_slack = slack;
        stats.total_seconds = start.elapsed().as_secs_f64();
        let mapping = Mapping::new(dfg.name(), ii, placements);
        debug_assert_eq!(mapping.validate(dfg, self.cgra), Ok(()));
        MapResult { mapping, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::examples::{accumulator, running_example, stream_scale};
    use cgra_dfg::{suite, DfgBuilder, Operation as Op};

    #[test]
    fn running_example_maps_at_paper_ii() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 4, "paper Fig. 2b");
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert_eq!(result.stats.mii, 4);
        assert!(result.stats.time_solutions >= 1);
    }

    #[test]
    fn accumulator_maps_at_two() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = accumulator();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 2);
        result.mapping.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn stream_scale_maps_on_3x3() {
        let cgra = Cgra::new(3, 3).unwrap();
        let dfg = stream_scale();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert!(result.mapping.ii() >= result.stats.mii);
    }

    #[test]
    fn suite_kernels_map_on_5x5() {
        let cgra = Cgra::new(5, 5).unwrap();
        for name in ["susan", "gsm", "bitcount"] {
            let dfg = suite::generate(name);
            let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            result.mapping.validate(&dfg, &cgra).unwrap();
            assert!(
                result.mapping.ii() <= result.stats.mii + 3,
                "{name}: ii {} vs mii {}",
                result.mapping.ii(),
                result.stats.mii
            );
        }
    }

    fn star4() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.unary("c", Op::Neg, x);
        for i in 0..4 {
            b.unary(format!("k{i}"), Op::Not, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn no_solution_when_connectivity_cannot_hold() {
        // Four same-slot consumers and D_M = 3: with zero slack no II
        // can fix the singleton windows, so the range exhausts.
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = MapperConfig::new().with_max_ii(6).with_max_window_slack(0);
        let err = DecoupledMapper::with_config(&cgra, cfg)
            .map(&star4())
            .unwrap_err();
        assert_eq!(err, MapError::NoSolution { mii: 2, max_ii: 6 });
    }

    #[test]
    fn slack_rescues_the_star() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = star4();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert!(result.stats.window_slack > 0, "needed slack to spread");
    }

    #[test]
    fn cancel_flag_times_out() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let mut mapper = DecoupledMapper::new(&cgra);
        mapper.set_cancel_flag(Arc::new(AtomicBool::new(true)));
        assert!(matches!(mapper.map(&dfg), Err(MapError::Timeout { .. })));
    }

    #[test]
    fn strict_connectivity_still_maps_running_example() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_strict_connectivity(true);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn invalid_dfg_is_reported() {
        let mut b = DfgBuilder::new();
        let _ = b.phi("open", 0);
        let dfg = b.build_unchecked();
        let cgra = Cgra::new(2, 2).unwrap();
        assert!(matches!(
            DecoupledMapper::new(&cgra).map(&dfg),
            Err(MapError::InvalidDfg(_))
        ));
    }

    #[test]
    fn heuristic_time_strategy_maps_suite_kernels() {
        use crate::TimeStrategy;
        let cgra = Cgra::new(4, 4).unwrap();
        for name in ["susan", "bitcount", "gsm"] {
            let dfg = suite::generate(name);
            let cfg = MapperConfig::new().with_time_strategy(TimeStrategy::Heuristic);
            let result = DecoupledMapper::with_config(&cgra, cfg)
                .map(&dfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            result.mapping.validate(&dfg, &cgra).unwrap();
            // Heuristic may need a slightly larger II than the exact
            // search, but not much on a roomy 4x4.
            assert!(
                result.mapping.ii() <= result.stats.mii + 3,
                "{name}: heuristic II {} vs mII {}",
                result.mapping.ii(),
                result.stats.mii
            );
        }
    }

    #[test]
    fn heuristic_running_example_matches_smt_ii() {
        use crate::TimeStrategy;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_time_strategy(TimeStrategy::Heuristic);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert_eq!(result.mapping.ii(), 4, "IMS+mono reaches the paper's II");
    }

    #[test]
    fn stats_phases_sum_below_total() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        let s = result.stats;
        assert!(s.time_phase_seconds + s.space_phase_seconds <= s.total_seconds + 1e-3);
        assert_eq!(s.achieved_ii, 4);
    }
}
