//! The decoupled space/time mapper (paper §IV).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use cgra_base::CancelFlag;

use cgra_arch::{Cgra, MAX_ROUTE_HOPS};
use cgra_dfg::Dfg;
use cgra_iso::{MonoOutcome, SearchConfig, Searcher};
use cgra_sched::{
    ims_schedule, min_ii, unsupported_op_class, EnumerationEnd, IncrementalTimeSolver,
    SolveOutcome, TimeSolution, TimeSolver, TimeSolverConfig, TimeSolverError,
};

use crate::api::{emit, MapEvent, MapObserver, SpaceAttemptOutcome};
use crate::config::TimeStrategy;
use crate::space::{build_pattern, SpaceEngine, SpaceOutcome};
use crate::{MapError, MapperConfig, Mapping, Placement};

/// How often the portfolio supervisor polls for user cancellation while
/// worker threads race their monomorphism searches.
const PORTFOLIO_POLL: Duration = Duration::from_millis(2);

/// Distribution of chosen route lengths over the dependences of one
/// mapping: bucket `d` counts edges whose endpoints sit `d` topology
/// hops apart (bucket 0 is same-PE / held-value dependences; the last
/// bucket, [`MAX_ROUTE_HOPS`], saturates).
///
/// Under the classic one-hop model only buckets 0 and 1 are ever
/// populated; wider routing models show where the mapper actually
/// spent its extra freedom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RouteHopsHistogram([u64; MAX_ROUTE_HOPS + 1]);

impl RouteHopsHistogram {
    /// Counts one dependence routed over `hops` hops (saturating into
    /// the last bucket).
    pub fn record(&mut self, hops: usize) {
        self.0[hops.min(MAX_ROUTE_HOPS)] += 1;
    }

    /// Dependences routed over exactly `hops` hops (the last bucket
    /// also holds anything beyond it).
    pub fn count(&self, hops: usize) -> u64 {
        self.0[hops.min(MAX_ROUTE_HOPS)]
    }

    /// Total dependences recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The raw buckets, indexed by hop count.
    pub fn buckets(&self) -> &[u64] {
        &self.0
    }
}

// Hand-written because the vendored serde has no fixed-size-array
// impls: the histogram crosses the wire as a plain sequence of bucket
// counts.
impl Serialize for RouteHopsHistogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.0.iter().map(|c| c.to_value()).collect())
    }
}

impl Deserialize for RouteHopsHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let counts = Vec::<u64>::from_value(v)?;
        if counts.len() != MAX_ROUTE_HOPS + 1 {
            return Err(serde::de::Error::custom(format!(
                "route-hops histogram needs {} buckets, got {}",
                MAX_ROUTE_HOPS + 1,
                counts.len()
            )));
        }
        let mut buckets = [0u64; MAX_ROUTE_HOPS + 1];
        buckets.copy_from_slice(&counts);
        Ok(RouteHopsHistogram(buckets))
    }
}

/// A successful mapping together with search statistics.
#[derive(Clone, Debug)]
pub struct MapResult {
    /// The space-time mapping.
    pub mapping: Mapping,
    /// How the search went (phase timings, attempts, II escalations).
    pub stats: MapStats,
}

/// Search statistics — the unified superset shared by every engine.
///
/// One struct serves all three mappers, so [`crate::api::MapReport`]s
/// are comparable across engines. The paper's Table III reports the
/// time and space phases separately;
/// [`MapStats::time_phase_seconds`] and [`MapStats::space_phase_seconds`]
/// are those columns (decoupled engine only). The coupled baseline
/// contributes [`MapStats::sat_vars`] / [`MapStats::clauses`] (its
/// formulation size); fields an engine does not produce stay at their
/// defaults.
///
/// Reports are self-describing: [`MapStats::time_strategy`] and
/// [`MapStats::space_parallelism`] echo the configuration the search
/// actually ran with, so consumers no longer re-derive them from the
/// request out-of-band.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapStats {
    /// The lower bound `mII` the search started from.
    pub mii: usize,
    /// The achieved iteration interval.
    pub achieved_ii: usize,
    /// Wall-clock total.
    pub total_seconds: f64,
    /// Wall-clock spent in the SMT time search.
    pub time_phase_seconds: f64,
    /// Wall-clock spent building or extending time-phase encodings:
    /// fresh per-level encodes plus incremental widenings (decoupled
    /// SMT strategy only; part of [`MapStats::time_phase_seconds`]).
    pub time_encode_seconds: f64,
    /// Wall-clock spent inside time-phase SAT solve calls (decoupled
    /// SMT strategy only; part of [`MapStats::time_phase_seconds`]).
    pub time_solve_seconds: f64,
    /// Wall-clock spent in monomorphism search (including MRRG
    /// construction). In portfolio mode this is the elapsed wall-clock
    /// of the races — the Table III phase semantics — not the summed
    /// search time of the parallel workers.
    pub space_phase_seconds: f64,
    /// Time solutions produced by the SMT layer.
    pub time_solutions: usize,
    /// Monomorphism searches attempted.
    pub space_attempts: usize,
    /// Total monomorphism search steps.
    pub mono_steps: u64,
    /// Number of II values attempted.
    pub iis_tried: usize,
    /// `(II, slack)` levels the persistent incremental time solver
    /// proved unsatisfiable by widening its live instance, skipping the
    /// fresh per-level encode entirely
    /// ([`MapperConfig::time_incremental`]; decoupled engine only).
    pub solver_reuses: usize,
    /// Learnt clauses alive on the persistent solver at each reused
    /// level, summed over reuses — the search state a from-scratch
    /// rebuild would have discarded.
    pub clauses_retained: u64,
    /// Window slack of the successful attempt.
    pub window_slack: usize,
    /// Which algorithm produced time solutions; `None` for engines
    /// without a decoupled time phase (the coupled and annealing
    /// baselines).
    pub time_strategy: Option<TimeStrategy>,
    /// Worker threads the space phase raced schedules across (`1` is
    /// the deterministic serial path; baselines are always serial).
    pub space_parallelism: usize,
    /// SAT variables of the successful coupled formulation (coupled
    /// baseline only; 0 otherwise).
    pub sat_vars: usize,
    /// SAT clauses of the successful coupled formulation (coupled
    /// baseline only; 0 otherwise).
    pub clauses: usize,
    /// Distribution of chosen route lengths over the mapping's
    /// dependences (bucket `d` = edges placed `d` hops apart).
    pub route_hops_histogram: RouteHopsHistogram,
}

impl Default for MapStats {
    fn default() -> Self {
        MapStats {
            mii: 0,
            achieved_ii: 0,
            total_seconds: 0.0,
            time_phase_seconds: 0.0,
            time_encode_seconds: 0.0,
            time_solve_seconds: 0.0,
            space_phase_seconds: 0.0,
            time_solutions: 0,
            space_attempts: 0,
            mono_steps: 0,
            iis_tried: 0,
            solver_reuses: 0,
            clauses_retained: 0,
            window_slack: 0,
            time_strategy: None,
            space_parallelism: 1,
            sat_vars: 0,
            clauses: 0,
            route_hops_histogram: RouteHopsHistogram::default(),
        }
    }
}

/// How one `(II, slack)` level of the SMT path ended.
enum LevelOutcome {
    /// A schedule embedded: the search is over.
    Found(TimeSolution, Vec<usize>),
    /// The time solver proved the level unsatisfiable before producing
    /// a single schedule. Barren levels are where the incremental
    /// UNSAT screen earns its keep: their (cheap) unsatisfiability
    /// proofs are the only work the screen ever repeats.
    BarrenUnsat,
    /// The level ended without a mapping in any other way — schedules
    /// that failed to embed, the enumeration cap, or a per-solve budget
    /// running out. The II can no longer be screened incrementally.
    Exhausted,
}

/// The mapper: SMT time solve, then monomorphism space solve, with
/// fall-back enumeration and II escalation.
///
/// Owns a clone of its CGRA, so it satisfies the `'static` bound of
/// `Box<dyn `[`crate::api::Mapper`]`>` and can be registered with a
/// [`crate::api::MappingService`]. See the crate-level example for the
/// direct call path.
#[derive(Clone, Debug)]
pub struct DecoupledMapper {
    cgra: Cgra,
    config: MapperConfig,
    cancel: Option<CancelFlag>,
}

impl DecoupledMapper {
    /// A mapper for `cgra` with the paper-faithful default
    /// configuration.
    pub fn new(cgra: &Cgra) -> Self {
        DecoupledMapper {
            cgra: cgra.clone(),
            config: MapperConfig::default(),
            cancel: None,
        }
    }

    /// A mapper with an explicit configuration.
    pub fn with_config(cgra: &Cgra, config: MapperConfig) -> Self {
        DecoupledMapper {
            cgra: cgra.clone(),
            config,
            cancel: None,
        }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// The CGRA this mapper targets.
    pub fn cgra(&self) -> &Cgra {
        &self.cgra
    }

    /// Installs a cooperative cancellation flag checked between solver
    /// calls, inside the SAT core and inside the monomorphism DFS.
    pub fn set_cancel(&mut self, flag: CancelFlag) {
        self.cancel = Some(flag);
    }

    /// Installs a cooperative cancellation flag from a raw shared
    /// atomic.
    #[deprecated(since = "0.1.0", note = "use `set_cancel(CancelFlag::from_arc(flag))`")]
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.set_cancel(CancelFlag::from_arc(flag));
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// Maps `dfg` onto the CGRA.
    ///
    /// Searches II values from `mII` upward; for each II tries window
    /// slacks `0..=max_window_slack`, and for each time solution runs
    /// the monomorphism search, enumerating alternative schedules when
    /// the space phase fails (paper §IV-D guarantees this is rare). The
    /// MRRG target is built once per II by a [`SpaceEngine`] and shared
    /// by every slack level and time solution at that II.
    ///
    /// With [`MapperConfig::space_parallelism`] above 1, each
    /// `(II, slack)` level pulls up to
    /// [`MapperConfig::max_time_solutions`] schedules from the SMT
    /// enumerator and races their monomorphism searches across worker
    /// threads; the first success cancels the rest.
    ///
    /// With [`MapperConfig::time_incremental`] (the default), each II
    /// keeps its unsatisfiable slack levels alive on one persistent
    /// [`IncrementalTimeSolver`]: the next level is first widened onto
    /// that instance, and a proved Unsat skips the fresh per-level
    /// encode entirely. Levels that may carry schedules always run the
    /// fresh path, so the produced mappings are byte-identical with the
    /// switch on or off.
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidDfg`] for malformed graphs,
    /// [`MapError::UnsupportedOpClass`] when the kernel needs an
    /// operation class no PE of a heterogeneous CGRA provides (checked
    /// before any search runs),
    /// [`MapError::NoSolution`] when the II range is exhausted — or
    /// immediately when [`MapperConfig::max_ii`] is below `mII` (the cap
    /// is a contract, never silently widened), and
    /// [`MapError::Timeout`] when cancelled. A per-solve
    /// [`MapperConfig::time_budget`] running out at one `(II, slack)`
    /// level is *not* a timeout: the search escalates to the next level.
    pub fn map(&self, dfg: &Dfg) -> Result<MapResult, MapError> {
        self.map_observed(dfg, None)
    }

    /// Like [`DecoupledMapper::map`], but emitting structured
    /// [`MapEvent`]s to `observer` as the search progresses.
    ///
    /// On the serial path (`space_parallelism == 1`) the event sequence
    /// is deterministic: identical inputs produce the identical event
    /// stream run to run. In portfolio mode the space races of one
    /// batch are coalesced into a single [`MapEvent::SpaceAttempt`]
    /// (per-worker attempts finish in nondeterministic order).
    pub fn map_observed(
        &self,
        dfg: &Dfg,
        observer: Option<&dyn MapObserver>,
    ) -> Result<MapResult, MapError> {
        let result = self.map_inner(dfg, observer);
        if let Some(obs) = observer {
            obs.on_event(&MapEvent::Finished {
                mapped: result.is_ok(),
                ii: result.as_ref().ok().map(|r| r.mapping.ii()),
            });
        }
        result
    }

    fn map_inner(&self, dfg: &Dfg, obs: Option<&dyn MapObserver>) -> Result<MapResult, MapError> {
        dfg.validate()?;
        // A class with demand but no provider can never map, at any II:
        // fail before any search runs (and before mII, whose per-class
        // resource bound is undefined for such classes).
        if let Some(class) = unsupported_op_class(dfg, &self.cgra) {
            return Err(MapError::UnsupportedOpClass { class });
        }
        let start = Instant::now();
        let mii = min_ii(dfg, &self.cgra);
        if let Some(cap) = self.config.max_ii {
            if cap < mii {
                return Err(MapError::NoSolution { mii, max_ii: cap });
            }
        }
        let max_ii = self.config.max_ii.unwrap_or(mii + 16);
        let mut stats = MapStats {
            mii,
            time_strategy: Some(self.config.time_strategy),
            space_parallelism: self.config.space_parallelism,
            ..MapStats::default()
        };
        let mut engine = SpaceEngine::with_route_hops(&self.cgra, self.config.max_route_hops);

        for ii in mii..=max_ii {
            stats.iis_tried += 1;
            emit(obs, MapEvent::IiStarted { ii });
            // Targets for earlier IIs are never revisited.
            engine.retain_ii(ii);
            // The II's persistent UNSAT screen: one live incremental
            // solver retaining learnt clauses across slack levels. It
            // exists only while every level of this II so far ended
            // barren-Unsat; any level that produces a schedule (or times
            // out) retires it, so the model-producing path below stays
            // byte-identical to the always-rebuild mode.
            let mut screen: Option<IncrementalTimeSolver<'_>> = None;
            let mut all_barren = true;
            for slack in 0..=self.config.max_window_slack {
                if self.cancelled() {
                    return Err(MapError::Timeout { ii });
                }
                let mut ts_config = TimeSolverConfig::for_cgra(&self.cgra)
                    .with_window_slack(slack)
                    .with_strict_connectivity(self.config.strict_connectivity)
                    .with_capacity_constraints(self.config.capacity_constraints)
                    .with_connectivity_constraints(self.config.connectivity_constraints);
                if let Some(b) = &self.config.time_budget {
                    ts_config = ts_config.with_budget(b.clone());
                }

                if self.config.time_strategy == TimeStrategy::Heuristic {
                    // Heuristic time phase: one IMS attempt per
                    // (II, slack) level, no enumeration (and nothing to
                    // race in portfolio mode).
                    let t0 = Instant::now();
                    let sol = ims_schedule(dfg, ii, &ts_config);
                    stats.time_phase_seconds += t0.elapsed().as_secs_f64();
                    if let Some(sol) = sol {
                        stats.time_solutions += 1;
                        emit(obs, MapEvent::TimeSolutionFound { ii, slack });
                        let t1 = Instant::now();
                        let (space, steps) = engine.search(
                            dfg,
                            &sol,
                            self.config.mono_step_limit,
                            self.cancel.as_ref(),
                        );
                        stats.space_phase_seconds += t1.elapsed().as_secs_f64();
                        stats.space_attempts += 1;
                        stats.mono_steps += steps;
                        emit(
                            obs,
                            MapEvent::SpaceAttempt {
                                ii,
                                slack,
                                outcome: SpaceAttemptOutcome::from(&space),
                            },
                        );
                        match space {
                            SpaceOutcome::Found(map) => {
                                return Ok(self.finish(dfg, &sol, map, ii, slack, start, stats));
                            }
                            SpaceOutcome::Cancelled => return Err(MapError::Timeout { ii }),
                            SpaceOutcome::Exhausted | SpaceOutcome::LimitReached => {}
                        }
                    }
                    emit(obs, MapEvent::Escalated { ii, slack });
                    continue;
                }

                // Ask the live instance first: widening it is a handful
                // of guarded clause additions on a solver that already
                // learnt why the narrower windows failed, and a proved
                // Unsat skips the fresh encode below entirely.
                if self.config.time_incremental && all_barren {
                    if let Some(live) = screen.as_mut() {
                        let t0 = Instant::now();
                        live.widen_to(slack);
                        let encode = t0.elapsed().as_secs_f64();
                        stats.time_phase_seconds += encode;
                        stats.time_encode_seconds += encode;
                        let t1 = Instant::now();
                        let screened = live.solve_outcome();
                        let solve = t1.elapsed().as_secs_f64();
                        stats.time_phase_seconds += solve;
                        stats.time_solve_seconds += solve;
                        match screened {
                            SolveOutcome::Unsat => {
                                stats.solver_reuses += 1;
                                stats.clauses_retained += live.learnt_clauses() as u64;
                                emit(obs, MapEvent::LevelReused { ii, slack });
                                emit(obs, MapEvent::Escalated { ii, slack });
                                continue;
                            }
                            SolveOutcome::Timeout if self.cancelled() => {
                                return Err(MapError::Timeout { ii });
                            }
                            SolveOutcome::Solution(_) | SolveOutcome::Timeout => {
                                // The level may have schedules (or the
                                // budget ran out): retire the screen and
                                // run the byte-identical fresh path.
                                screen = None;
                            }
                        }
                    }
                }

                let screen_config = ts_config.clone();
                let outcome = if self.config.space_parallelism > 1 {
                    self.portfolio_level(dfg, ii, slack, ts_config, &mut engine, &mut stats, obs)?
                } else {
                    self.serial_level(dfg, ii, slack, ts_config, &mut engine, &mut stats, obs)?
                };
                match outcome {
                    LevelOutcome::Found(sol, map) => {
                        return Ok(self.finish(dfg, &sol, map, ii, slack, start, stats));
                    }
                    LevelOutcome::BarrenUnsat => {
                        if self.config.time_incremental && all_barren && screen.is_none() {
                            // Build the screen now that the II has shown
                            // a barren level, and seed-solve it: the
                            // fresh proof was cheap, re-deriving it here
                            // is too, and it leaves the learnt clauses
                            // the next widening starts from.
                            let t0 = Instant::now();
                            let mut live = IncrementalTimeSolver::new(dfg, ii, screen_config)
                                .expect("the fresh level already validated this instance");
                            if let Some(flag) = &self.cancel {
                                live.set_cancel_flag(flag.arc());
                            }
                            let encode = t0.elapsed().as_secs_f64();
                            stats.time_phase_seconds += encode;
                            stats.time_encode_seconds += encode;
                            let t1 = Instant::now();
                            let seeded = live.solve_outcome();
                            let solve = t1.elapsed().as_secs_f64();
                            stats.time_phase_seconds += solve;
                            stats.time_solve_seconds += solve;
                            // The fresh level proved this exact formula
                            // Unsat; the seed can at worst run out of a
                            // per-solve budget, never find a model.
                            debug_assert!(!matches!(seeded, SolveOutcome::Solution(_)));
                            screen = Some(live);
                        }
                    }
                    LevelOutcome::Exhausted => {
                        all_barren = false;
                        screen = None;
                    }
                }
                emit(obs, MapEvent::Escalated { ii, slack });
            }
        }
        Err(MapError::NoSolution { mii, max_ii })
    }

    /// Builds the time solver for one `(II, slack)` level, with the
    /// user's cancellation flag installed.
    fn level_solver<'d>(
        &self,
        dfg: &'d Dfg,
        ii: usize,
        ts_config: TimeSolverConfig,
    ) -> Result<TimeSolver<'d>, MapError> {
        let mut solver = match TimeSolver::new(dfg, ii, ts_config) {
            Ok(s) => s,
            Err(TimeSolverError::Dfg(e)) => return Err(MapError::InvalidDfg(e)),
            Err(_) => unreachable!("ii and capacity are positive"),
        };
        if let Some(flag) = &self.cancel {
            solver.set_cancel_flag(flag.arc());
        }
        Ok(solver)
    }

    /// The serial (deterministic) `(II, slack)` level: interleaves SMT
    /// enumeration with one monomorphism search per schedule, exactly in
    /// enumeration order.
    ///
    /// Returns [`LevelOutcome::Found`] with the winning
    /// `(schedule, monomorphism)`, or how the level ended otherwise
    /// (the caller escalates either way).
    #[allow(clippy::too_many_arguments)]
    fn serial_level(
        &self,
        dfg: &Dfg,
        ii: usize,
        slack: usize,
        ts_config: TimeSolverConfig,
        engine: &mut SpaceEngine<'_>,
        stats: &mut MapStats,
        obs: Option<&dyn MapObserver>,
    ) -> Result<LevelOutcome, MapError> {
        let t0 = Instant::now();
        let mut solver = self.level_solver(dfg, ii, ts_config)?;
        let encode = t0.elapsed().as_secs_f64();
        stats.time_phase_seconds += encode;
        stats.time_encode_seconds += encode;
        let t1 = Instant::now();
        let mut outcome = solver.solve_outcome();
        let solve = t1.elapsed().as_secs_f64();
        stats.time_phase_seconds += solve;
        stats.time_solve_seconds += solve;

        let mut tries = 0usize;
        loop {
            match outcome {
                SolveOutcome::Solution(sol) => {
                    tries += 1;
                    stats.time_solutions += 1;
                    emit(obs, MapEvent::TimeSolutionFound { ii, slack });
                    let t1 = Instant::now();
                    let (space, steps) =
                        engine.search(dfg, &sol, self.config.mono_step_limit, self.cancel.as_ref());
                    stats.space_phase_seconds += t1.elapsed().as_secs_f64();
                    stats.space_attempts += 1;
                    stats.mono_steps += steps;
                    emit(
                        obs,
                        MapEvent::SpaceAttempt {
                            ii,
                            slack,
                            outcome: SpaceAttemptOutcome::from(&space),
                        },
                    );
                    match space {
                        SpaceOutcome::Found(map) => return Ok(LevelOutcome::Found(sol, map)),
                        SpaceOutcome::Cancelled => return Err(MapError::Timeout { ii }),
                        SpaceOutcome::Exhausted | SpaceOutcome::LimitReached => {}
                    }
                    if tries >= self.config.max_time_solutions {
                        return Ok(LevelOutcome::Exhausted);
                    }
                    let t2 = Instant::now();
                    outcome = solver.next_outcome();
                    let solve = t2.elapsed().as_secs_f64();
                    stats.time_phase_seconds += solve;
                    stats.time_solve_seconds += solve;
                }
                SolveOutcome::Unsat => {
                    return Ok(if tries == 0 {
                        LevelOutcome::BarrenUnsat
                    } else {
                        LevelOutcome::Exhausted
                    });
                }
                SolveOutcome::Timeout => {
                    // User cancellation aborts the whole search; a
                    // per-solve budget running out only ends this level.
                    if self.cancelled() {
                        return Err(MapError::Timeout { ii });
                    }
                    return Ok(LevelOutcome::Exhausted);
                }
            }
        }
    }

    /// The portfolio `(II, slack)` level: pulls up to
    /// [`MapperConfig::max_time_solutions`] schedules, then races their
    /// monomorphism searches across
    /// [`MapperConfig::space_parallelism`] scoped worker threads against
    /// the II's shared cached target. The first success raises a race
    /// flag that cancels the remaining searches; a supervisor loop
    /// forwards user cancellation into the race.
    /// Schedules are pulled in batches of `space_parallelism` rather
    /// than all `max_time_solutions` up front: the common case (the
    /// first schedule embeds, per the paper's §IV-D argument) then pays
    /// for one small batch of SMT solves, not the whole enumeration cap.
    #[allow(clippy::too_many_arguments)]
    fn portfolio_level(
        &self,
        dfg: &Dfg,
        ii: usize,
        slack: usize,
        ts_config: TimeSolverConfig,
        engine: &mut SpaceEngine<'_>,
        stats: &mut MapStats,
        obs: Option<&dyn MapObserver>,
    ) -> Result<LevelOutcome, MapError> {
        let t_enc = Instant::now();
        let mut solver = self.level_solver(dfg, ii, ts_config)?;
        let encode = t_enc.elapsed().as_secs_f64();
        stats.time_phase_seconds += encode;
        stats.time_encode_seconds += encode;
        let mut remaining = self.config.max_time_solutions;
        let mut pulled = 0usize;
        loop {
            if self.cancelled() {
                return Err(MapError::Timeout { ii });
            }
            let batch_cap = self.config.space_parallelism.min(remaining);
            if batch_cap == 0 {
                return Ok(LevelOutcome::Exhausted);
            }
            let t0 = Instant::now();
            let (solutions, batch_end) = solver.enumerate_solutions(batch_cap);
            let solve = t0.elapsed().as_secs_f64();
            stats.time_phase_seconds += solve;
            stats.time_solve_seconds += solve;
            stats.time_solutions += solutions.len();
            remaining -= solutions.len();
            pulled += solutions.len();

            if !solutions.is_empty() {
                for _ in &solutions {
                    emit(obs, MapEvent::TimeSolutionFound { ii, slack });
                }
                let t1 = Instant::now();
                // Built only once a schedule exists (Unsat levels never
                // pay for target construction); cache hit after the
                // first batch.
                let target = engine.target(ii);
                let winner = self.race_batch(dfg, &target, &solutions, stats);
                // Wall-clock of the race (the Table III phase
                // semantics), not the sum over parallel workers.
                stats.space_phase_seconds += t1.elapsed().as_secs_f64();
                // One coalesced event per raced batch: the per-worker
                // attempts complete in nondeterministic order.
                emit(
                    obs,
                    MapEvent::SpaceAttempt {
                        ii,
                        slack,
                        outcome: if winner.is_some() {
                            SpaceAttemptOutcome::Found
                        } else {
                            SpaceAttemptOutcome::Exhausted
                        },
                    },
                );
                if let Some((idx, map)) = winner {
                    return Ok(LevelOutcome::Found(solutions[idx].clone(), map));
                }
                if self.cancelled() {
                    return Err(MapError::Timeout { ii });
                }
            }
            match batch_end {
                EnumerationEnd::CapReached => continue,
                EnumerationEnd::Unsat => {
                    return Ok(if pulled == 0 {
                        LevelOutcome::BarrenUnsat
                    } else {
                        LevelOutcome::Exhausted
                    });
                }
                EnumerationEnd::Timeout => {
                    // The flag may have been raised while the SMT solve
                    // was blocked: user cancellation aborts, a per-solve
                    // budget running out ends only this level and the
                    // caller escalates.
                    if self.cancelled() {
                        return Err(MapError::Timeout { ii });
                    }
                    return Ok(LevelOutcome::Exhausted);
                }
            }
        }
    }

    /// Races the monomorphism searches of one batch of schedules across
    /// scoped worker threads sharing `target`. The first success raises
    /// a race flag that cancels the remaining searches; the supervisor
    /// loop wakes on worker completion and forwards user cancellation
    /// into the race between wake-ups.
    ///
    /// Returns the winning `(index into solutions, monomorphism)`,
    /// preferring the earliest schedule when several workers win.
    fn race_batch(
        &self,
        dfg: &Dfg,
        target: &Arc<cgra_iso::Target>,
        solutions: &[TimeSolution],
        stats: &mut MapStats,
    ) -> Option<(usize, Vec<usize>)> {
        let race = CancelFlag::new();
        let next = AtomicUsize::new(0);
        let dispatched = AtomicUsize::new(0);
        let total_steps = AtomicU64::new(0);
        let best: Mutex<Option<(usize, Vec<usize>)>> = Mutex::new(None);
        let workers = self.config.space_parallelism.min(solutions.len());
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let done = done_tx.clone();
                let race = race.clone();
                let target = Arc::clone(target);
                let next = &next;
                let dispatched = &dispatched;
                let total_steps = &total_steps;
                let best = &best;
                scope.spawn(move || {
                    loop {
                        if race.is_cancelled() {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= solutions.len() {
                            break;
                        }
                        dispatched.fetch_add(1, Ordering::Relaxed);
                        let sol = &solutions[idx];
                        let pattern = build_pattern(dfg, sol);
                        let config = SearchConfig::steps(self.config.mono_step_limit)
                            .with_cancel_flag(race.clone());
                        let mut searcher = Searcher::with_config(&pattern, &target, config);
                        let outcome = searcher.run();
                        total_steps.fetch_add(searcher.stats().steps, Ordering::Relaxed);
                        if let MonoOutcome::Found(map) = outcome {
                            let mut w = best.lock().expect("winner lock");
                            // Keep the earliest schedule's win for
                            // run-to-run stability.
                            if w.as_ref().is_none_or(|(b, _)| idx < *b) {
                                *w = Some((idx, map));
                            }
                            drop(w);
                            race.cancel(); // first win cancels the rest
                        }
                    }
                    let _ = done.send(());
                });
            }
            drop(done_tx);
            let mut running = workers;
            while running > 0 {
                match done_rx.recv_timeout(PORTFOLIO_POLL) {
                    Ok(()) => running -= 1,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        if self.cancelled() {
                            race.cancel();
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        stats.space_attempts += dispatched.load(Ordering::Relaxed);
        stats.mono_steps += total_steps.load(Ordering::Relaxed);
        best.into_inner().expect("winner lock")
    }

    /// Converts a found monomorphism into the final [`Mapping`] and
    /// closes out the statistics.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        dfg: &Dfg,
        sol: &TimeSolution,
        map: Vec<usize>,
        ii: usize,
        slack: usize,
        start: Instant,
        mut stats: MapStats,
    ) -> MapResult {
        let n = self.cgra.num_pes();
        let placements: Vec<Placement> = dfg
            .nodes()
            .map(|v| {
                let idx = map[v.index()];
                debug_assert_eq!(idx / n, sol.slot(v));
                Placement {
                    pe: cgra_arch::PeId::from_index(idx % n),
                    slot: idx / n,
                    time: sol.time(v),
                }
            })
            .collect();
        stats.achieved_ii = ii;
        stats.window_slack = slack;
        stats.total_seconds = start.elapsed().as_secs_f64();
        // Chosen route length per dependence. The histogram is recorded
        // for every model (it costs a table lookup per edge); the
        // per-edge vector rides on the mapping only under a widened
        // model, keeping one-hop mappings byte-identical on the wire.
        let route_hops: Vec<usize> = dfg
            .edges()
            .iter()
            .map(|e| {
                if e.src == e.dst {
                    return 0;
                }
                self.cgra
                    .hop_distance(placements[e.src.index()].pe, placements[e.dst.index()].pe)
                    .expect("embedded dependences are within the route bound")
            })
            .collect();
        for &hops in &route_hops {
            stats.route_hops_histogram.record(hops);
        }
        let mut mapping = Mapping::new(dfg.name(), ii, placements);
        if self.config.max_route_hops > 1 {
            mapping = mapping.with_route_hops(route_hops);
        }
        debug_assert_eq!(
            mapping.validate_routed(dfg, &self.cgra, self.config.max_route_hops),
            Ok(())
        );
        MapResult { mapping, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::examples::{accumulator, running_example, stream_scale};
    use cgra_dfg::{suite, DfgBuilder, Operation as Op};

    #[test]
    fn running_example_maps_at_paper_ii() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 4, "paper Fig. 2b");
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert_eq!(result.stats.mii, 4);
        assert!(result.stats.time_solutions >= 1);
    }

    #[test]
    fn accumulator_maps_at_two() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = accumulator();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 2);
        result.mapping.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn stream_scale_maps_on_3x3() {
        let cgra = Cgra::new(3, 3).unwrap();
        let dfg = stream_scale();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert!(result.mapping.ii() >= result.stats.mii);
    }

    #[test]
    fn suite_kernels_map_on_5x5() {
        let cgra = Cgra::new(5, 5).unwrap();
        for name in ["susan", "gsm", "bitcount"] {
            let dfg = suite::generate(name);
            let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            result.mapping.validate(&dfg, &cgra).unwrap();
            assert!(
                result.mapping.ii() <= result.stats.mii + 3,
                "{name}: ii {} vs mii {}",
                result.mapping.ii(),
                result.stats.mii
            );
        }
    }

    fn star4() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.unary("c", Op::Neg, x);
        for i in 0..4 {
            b.unary(format!("k{i}"), Op::Not, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn no_solution_when_connectivity_cannot_hold() {
        // Four same-slot consumers and D_M = 3: with zero slack no II
        // can fix the singleton windows, so the range exhausts.
        let cgra = Cgra::new(2, 2).unwrap();
        let cfg = MapperConfig::new().with_max_ii(6).with_max_window_slack(0);
        let err = DecoupledMapper::with_config(&cgra, cfg)
            .map(&star4())
            .unwrap_err();
        assert_eq!(err, MapError::NoSolution { mii: 2, max_ii: 6 });
    }

    #[test]
    fn slack_rescues_the_star() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = star4();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert!(result.stats.window_slack > 0, "needed slack to spread");
    }

    #[test]
    fn cancel_flag_times_out() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let mut mapper = DecoupledMapper::new(&cgra);
        let flag = CancelFlag::new();
        flag.cancel();
        mapper.set_cancel(flag);
        assert!(matches!(mapper.map(&dfg), Err(MapError::Timeout { .. })));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_set_cancel_flag_shim_still_works() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let mut mapper = DecoupledMapper::new(&cgra);
        mapper.set_cancel_flag(Arc::new(AtomicBool::new(true)));
        assert!(matches!(mapper.map(&dfg), Err(MapError::Timeout { .. })));
    }

    #[test]
    fn cancel_flag_times_out_portfolio() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_space_parallelism(3);
        let mut mapper = DecoupledMapper::with_config(&cgra, cfg);
        let flag = CancelFlag::new();
        flag.cancel();
        mapper.set_cancel(flag);
        assert!(matches!(mapper.map(&dfg), Err(MapError::Timeout { .. })));
    }

    #[test]
    fn cancel_mid_map_portfolio_reports_timeout_not_no_solution() {
        // Regression: a flag raised while the portfolio level was
        // blocked inside the SMT enumeration used to fall through as
        // level exhaustion and could surface as NoSolution. Cancel a
        // long-running portfolio map mid-flight: the error must be
        // Timeout, and the return prompt.
        let cgra = Cgra::new(5, 5).unwrap();
        let dfg = suite::generate("hotspot3D"); // the slow suite kernel
        let cfg = MapperConfig::new().with_space_parallelism(3);
        let mut mapper = DecoupledMapper::with_config(&cgra, cfg);
        let flag = CancelFlag::new();
        mapper.set_cancel(flag.clone());
        let started = std::time::Instant::now();
        let result = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                flag.cancel();
            });
            mapper.map(&dfg)
        });
        assert!(
            matches!(result, Err(MapError::Timeout { .. })),
            "{result:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "cancelled portfolio map must return promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn max_ii_below_mii_is_rejected_immediately() {
        // Regression: the cap used to be silently clamped up to mII and
        // one II was searched anyway.
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example(); // mII = 4
        let cfg = MapperConfig::new().with_max_ii(2);
        let started = std::time::Instant::now();
        let err = DecoupledMapper::with_config(&cgra, cfg)
            .map(&dfg)
            .unwrap_err();
        assert_eq!(err, MapError::NoSolution { mii: 4, max_ii: 2 });
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "no II may be searched"
        );
    }

    #[test]
    fn budget_exhaustion_escalates_instead_of_aborting() {
        // Regression: a per-solve budget running out used to surface as
        // MapError::Timeout from the first (II, slack) level. With a
        // budget too small for any level, every level must now be
        // tried and the final error is NoSolution over the full range.
        use cgra_smt::Budget;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_max_ii(6).with_time_budget(Budget {
            max_conflicts: Some(0),
            max_propagations: Some(0),
        });
        let err = DecoupledMapper::with_config(&cgra, cfg)
            .map(&dfg)
            .unwrap_err();
        assert_eq!(err, MapError::NoSolution { mii: 4, max_ii: 6 });
    }

    #[test]
    fn generous_budget_still_maps() {
        // The budget-exhaustion escalation must not break solvable
        // levels: with a roomy budget the result is unchanged.
        use cgra_smt::Budget;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_time_budget(Budget::conflicts(1_000_000));
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 4);
    }

    #[test]
    fn serial_mappings_are_byte_identical_across_runs() {
        // The deterministic default (space_parallelism = 1): repeated
        // runs produce byte-for-byte identical mappings.
        let cgra = Cgra::new(5, 5).unwrap();
        for name in ["susan", "gsm", "bitcount"] {
            let dfg = suite::generate(name);
            let a = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            let b = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            let ja = serde_json::to_string(&a.mapping).unwrap();
            let jb = serde_json::to_string(&b.mapping).unwrap();
            assert_eq!(ja, jb, "{name}: serial path must be deterministic");
        }
    }

    #[test]
    fn portfolio_maps_suite_at_serial_ii() {
        let cgra = Cgra::new(5, 5).unwrap();
        for name in ["susan", "gsm", "bitcount"] {
            let dfg = suite::generate(name);
            let serial = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            let cfg = MapperConfig::new().with_space_parallelism(4);
            let portfolio = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
            portfolio.mapping.validate(&dfg, &cgra).unwrap();
            assert_eq!(
                serial.mapping.ii(),
                portfolio.mapping.ii(),
                "{name}: portfolio must achieve the serial II"
            );
        }
    }

    #[test]
    fn portfolio_running_example_reaches_paper_ii() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_space_parallelism(2);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        assert_eq!(result.mapping.ii(), 4);
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert!(result.stats.space_attempts >= 1);
        assert!(result.stats.mono_steps >= 1);
    }

    #[test]
    fn strict_connectivity_still_maps_running_example() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_strict_connectivity(true);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn invalid_dfg_is_reported() {
        let mut b = DfgBuilder::new();
        let _ = b.phi("open", 0);
        let dfg = b.build_unchecked();
        let cgra = Cgra::new(2, 2).unwrap();
        assert!(matches!(
            DecoupledMapper::new(&cgra).map(&dfg),
            Err(MapError::InvalidDfg(_))
        ));
    }

    #[test]
    fn heuristic_time_strategy_maps_suite_kernels() {
        use crate::TimeStrategy;
        let cgra = Cgra::new(4, 4).unwrap();
        for name in ["susan", "bitcount", "gsm"] {
            let dfg = suite::generate(name);
            let cfg = MapperConfig::new().with_time_strategy(TimeStrategy::Heuristic);
            let result = DecoupledMapper::with_config(&cgra, cfg)
                .map(&dfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            result.mapping.validate(&dfg, &cgra).unwrap();
            // Heuristic may need a slightly larger II than the exact
            // search, but not much on a roomy 4x4.
            assert!(
                result.mapping.ii() <= result.stats.mii + 3,
                "{name}: heuristic II {} vs mII {}",
                result.mapping.ii(),
                result.stats.mii
            );
        }
    }

    #[test]
    fn heuristic_running_example_matches_smt_ii() {
        use crate::TimeStrategy;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let cfg = MapperConfig::new().with_time_strategy(TimeStrategy::Heuristic);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        assert_eq!(result.mapping.ii(), 4, "IMS+mono reaches the paper's II");
    }

    fn mem_mul_kernel() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let a = b.load("a", x);
        let m = b.binary("m", Op::Mul, a, x);
        let p = b.phi("p", 0);
        let s = b.binary("s", Op::Add, p, m);
        b.loop_carried(s, p, 1);
        b.store("st", x, s);
        b.output("o", s);
        b.build().unwrap()
    }

    #[test]
    fn heterogeneous_grid_maps_and_respects_capabilities() {
        use cgra_arch::CapabilityProfile;
        let cgra = Cgra::new(4, 4)
            .unwrap()
            .with_capability_profile(CapabilityProfile::MemLeftMulCheckerboard);
        let dfg = mem_mul_kernel();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
        for v in dfg.nodes() {
            let class = dfg.op(v).op_class();
            assert!(
                cgra.supports(result.mapping.pe(v), class),
                "{v:?} ({class}) on incapable {:?}",
                result.mapping.pe(v)
            );
        }
    }

    #[test]
    fn heterogeneous_portfolio_matches_serial_ii() {
        use cgra_arch::CapabilityProfile;
        let cgra = Cgra::new(4, 4)
            .unwrap()
            .with_capability_profile(CapabilityProfile::MemLeftMulCheckerboard);
        let dfg = mem_mul_kernel();
        let serial = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        let cfg = MapperConfig::new().with_space_parallelism(3);
        let portfolio = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        portfolio.mapping.validate(&dfg, &cgra).unwrap();
        assert_eq!(serial.mapping.ii(), portfolio.mapping.ii());
    }

    #[test]
    fn unsupported_class_fails_fast() {
        use cgra_arch::{OpClass, OpClassSet};
        let cgra = Cgra::new(3, 3)
            .unwrap()
            .with_pe_capabilities(vec![OpClassSet::only(OpClass::Alu); 9])
            .unwrap();
        let dfg = mem_mul_kernel();
        let started = std::time::Instant::now();
        let err = DecoupledMapper::new(&cgra).map(&dfg).unwrap_err();
        assert!(
            matches!(err, MapError::UnsupportedOpClass { .. }),
            "{err:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "no search may run for an unsupported class"
        );
    }

    #[test]
    fn heterogeneous_heuristic_strategy_maps() {
        use crate::TimeStrategy;
        use cgra_arch::CapabilityProfile;
        let cgra = Cgra::new(4, 4)
            .unwrap()
            .with_capability_profile(CapabilityProfile::MemLeftColumn);
        let dfg = mem_mul_kernel();
        let cfg = MapperConfig::new().with_time_strategy(TimeStrategy::Heuristic);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        result.mapping.validate(&dfg, &cgra).unwrap();
    }

    #[test]
    fn stats_phases_sum_below_total() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        let s = result.stats;
        assert!(s.time_phase_seconds + s.space_phase_seconds <= s.total_seconds + 1e-3);
        // The encode/solve split partitions the time phase.
        assert!(s.time_encode_seconds + s.time_solve_seconds <= s.time_phase_seconds + 1e-3);
        assert!(s.time_encode_seconds > 0.0, "every level pays an encode");
        assert_eq!(s.achieved_ii, 4);
    }

    /// One producer feeding `k` same-slot consumers: connectivity-bound,
    /// so low IIs burn through barren-Unsat slack levels — the shape the
    /// incremental UNSAT screen exists for.
    fn star_k(k: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.unary("c", Op::Neg, x);
        for i in 0..k {
            b.unary(format!("k{i}"), Op::Not, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn incremental_screen_skips_barren_levels() {
        // star6 on a 2x2: II 2 is connectivity-infeasible at every
        // slack, so after the barren (2, 0) level the live instance
        // proves (2, 1) and (2, 2) Unsat by widening.
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = star_k(6);
        let on = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(on.stats.solver_reuses, 2, "{:?}", on.stats);
        assert!(on.stats.clauses_retained > 0, "reuses carry learnt state");

        let cfg = MapperConfig::new().with_time_incremental(false);
        let off = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        assert_eq!(off.stats.solver_reuses, 0, "rebuild mode never screens");
        assert_eq!(off.stats.clauses_retained, 0);
        // The screen only ever skips Unsat proofs: the mapping and the
        // search trajectory the stats describe are identical.
        assert_eq!(
            serde_json::to_string(&on.mapping).unwrap(),
            serde_json::to_string(&off.mapping).unwrap()
        );
        assert_eq!(on.stats.time_solutions, off.stats.time_solutions);
        assert_eq!(on.stats.space_attempts, off.stats.space_attempts);
        assert_eq!(on.stats.mono_steps, off.stats.mono_steps);
        assert_eq!(on.stats.window_slack, off.stats.window_slack);
    }

    #[test]
    fn incremental_and_rebuild_mappings_are_byte_identical() {
        let cgra = Cgra::new(5, 5).unwrap();
        for name in ["susan", "gsm", "bitcount"] {
            let dfg = suite::generate(name);
            let on = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
            let cfg = MapperConfig::new().with_time_incremental(false);
            let off = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
            assert_eq!(
                serde_json::to_string(&on.mapping).unwrap(),
                serde_json::to_string(&off.mapping).unwrap(),
                "{name}: the screen must not change the mapping"
            );
        }
    }

    #[test]
    fn incremental_screen_emits_level_reused_events() {
        use crate::api::EventCollector;
        use std::sync::Arc;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = star_k(6);
        let collector = Arc::new(EventCollector::new());
        let result = DecoupledMapper::new(&cgra)
            .map_observed(&dfg, Some(collector.as_ref()))
            .unwrap();
        let events = collector.events();
        let reused: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, MapEvent::LevelReused { .. }))
            .collect();
        assert_eq!(reused.len(), result.stats.solver_reuses);
        // Every reuse is immediately followed by its level's Escalated.
        for (i, e) in events.iter().enumerate() {
            if let MapEvent::LevelReused { ii, slack } = e {
                assert_eq!(
                    events.get(i + 1),
                    Some(&MapEvent::Escalated {
                        ii: *ii,
                        slack: *slack
                    })
                );
            }
        }
        // Rebuild mode emits none.
        let collector = Arc::new(EventCollector::new());
        let cfg = MapperConfig::new().with_time_incremental(false);
        DecoupledMapper::with_config(&cgra, cfg)
            .map_observed(&dfg, Some(collector.as_ref()))
            .unwrap();
        assert!(collector
            .events()
            .iter()
            .all(|e| !matches!(e, MapEvent::LevelReused { .. })));
    }

    #[test]
    fn budget_exhaustion_escalates_identically_with_screen_on_and_off() {
        // Satellite regression: a time budget running out mid-search
        // must escalate exactly like the from-scratch path, whether or
        // not the incremental screen is enabled.
        use cgra_smt::Budget;
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = star_k(6);
        for budget in [Budget::conflicts(0), Budget::conflicts(4)] {
            let on = MapperConfig::new()
                .with_max_ii(4)
                .with_time_budget(budget.clone());
            let off = on.clone().with_time_incremental(false);
            let a = DecoupledMapper::with_config(&cgra, on).map(&dfg);
            let b = DecoupledMapper::with_config(&cgra, off).map(&dfg);
            match (&a, &b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    serde_json::to_string(&x.mapping).unwrap(),
                    serde_json::to_string(&y.mapping).unwrap()
                ),
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("screened {a:?} vs rebuild {b:?} diverged"),
            }
        }
    }

    #[test]
    fn one_hop_mappings_record_histogram_but_not_route_hops() {
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let result = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        let h = result.stats.route_hops_histogram;
        assert_eq!(h.total() as usize, dfg.edges().len());
        assert_eq!(h.count(2) + h.count(3) + h.count(4), 0, "one-hop model");
        // The mapping's wire form is untouched at k=1.
        assert!(result.mapping.route_hops().is_empty());
        let json = serde_json::to_string(&result.mapping).unwrap();
        assert!(!json.contains("route_hops"), "{json}");
    }

    #[test]
    fn widened_routing_maps_the_mesh_star_at_a_lower_ii() {
        use cgra_arch::Topology;
        // star6 on a 3x3 mesh: the corner-heavy mesh makes one-hop
        // placement of 6 same-slot consumers expensive; two-hop routes
        // relax exactly that constraint.
        let cgra = Cgra::with_topology(3, 3, Topology::Mesh).unwrap();
        let dfg = star_k(6);
        let one = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        let cfg = MapperConfig::new().with_max_route_hops(2);
        let two = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        two.mapping.validate_routed(&dfg, &cgra, 2).unwrap();
        assert!(
            two.mapping.ii() <= one.mapping.ii(),
            "k=2 ({}) must never need a larger II than k=1 ({})",
            two.mapping.ii(),
            one.mapping.ii()
        );
        // The routed mapping records its per-edge route lengths.
        assert_eq!(two.mapping.route_hops().len(), dfg.edges().len());
        assert_eq!(
            two.stats.route_hops_histogram.total() as usize,
            dfg.edges().len()
        );
        assert!(
            two.mapping.route_hops().iter().all(|&d| d <= 2),
            "no route may exceed the bound"
        );
    }

    #[test]
    fn routed_mapping_roundtrips_with_route_lengths() {
        use cgra_arch::Topology;
        let cgra = Cgra::with_topology(3, 3, Topology::Mesh).unwrap();
        let dfg = star_k(6);
        let cfg = MapperConfig::new().with_max_route_hops(2);
        let result = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        if result.mapping.route_hops().iter().any(|&d| d > 1) {
            let json = serde_json::to_string(&result.mapping).unwrap();
            assert!(json.contains("route_hops"));
        }
        let json = serde_json::to_string(&result.mapping).unwrap();
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result.mapping);
    }

    #[test]
    fn stats_are_self_describing() {
        // The report records the configuration the search ran with, so
        // consumers no longer re-derive it from the request.
        let cgra = Cgra::new(2, 2).unwrap();
        let dfg = running_example();
        let serial = DecoupledMapper::new(&cgra).map(&dfg).unwrap();
        assert_eq!(serial.stats.time_strategy, Some(TimeStrategy::Smt));
        assert_eq!(serial.stats.space_parallelism, 1);
        assert_eq!(serial.stats.sat_vars, 0, "decoupled has no coupled CNF");

        let cfg = MapperConfig::new()
            .with_space_parallelism(2)
            .with_time_strategy(TimeStrategy::Heuristic);
        let portfolio = DecoupledMapper::with_config(&cgra, cfg).map(&dfg).unwrap();
        assert_eq!(portfolio.stats.time_strategy, Some(TimeStrategy::Heuristic));
        assert_eq!(portfolio.stats.space_parallelism, 2);
    }
}
