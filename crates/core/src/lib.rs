//! # monomap-core — monomorphism-based CGRA mapping via space and time
//! decoupling
//!
//! The primary contribution of the reproduced paper: a CGRA mapper that
//! explores the temporal and spatial dimensions *separately*:
//!
//! 1. **Time** ([`cgra_sched::TimeSolver`]): an SMT search over the
//!    Kernel Mobility Schedule finds a modulo schedule satisfying the
//!    paper's capacity and connectivity constraints (§IV-B);
//! 2. **Space** ([`cgra_iso`]): the scheduled DFG, viewed as an
//!    undirected graph labelled with kernel slots, is embedded into the
//!    MRRG by subgraph-monomorphism search (§IV-C).
//!
//! The paper proves (§IV-D) that a time solution under those constraints
//! always admits a space solution; [`DecoupledMapper`] nevertheless
//! keeps a correctness net — if the space search fails or exceeds its
//! step budget, the next time solution is requested from the SMT layer
//! (blocking clauses), then the window slack and finally the II are
//! escalated.
//!
//! ## Example
//!
//! ```
//! use cgra_arch::Cgra;
//! use cgra_dfg::examples::running_example;
//! use monomap_core::DecoupledMapper;
//!
//! let cgra = Cgra::new(2, 2)?;
//! let dfg = running_example();
//! let result = DecoupledMapper::new(&cgra).map(&dfg)?;
//! assert_eq!(result.mapping.ii(), 4); // the paper's Fig. 2b kernel
//! result.mapping.validate(&dfg, &cgra)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod config;
mod error;
mod mapper;
mod mapping;
mod printer;
mod space;

pub use api::{
    EngineId, EventCollector, MapEvent, MapObserver, MapOutcome, MapReport, MapRequest, Mapper,
    MappingService, SpaceAttemptOutcome,
};
pub use config::{MapperConfig, TimeStrategy};
pub use error::{MapError, MappingError};
pub use mapper::{DecoupledMapper, MapResult, MapStats, RouteHopsHistogram};
pub use mapping::{Mapping, Placement};
pub use space::{
    build_pattern, build_target, space_search, target_matches_mrrg, SpaceEngine, SpaceOutcome,
};
