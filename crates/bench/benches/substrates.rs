//! Criterion micro-benchmarks for the substrate crates: SAT core,
//! finite-domain layer, scheduling machinery and monomorphism engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra_arch::Cgra;
use cgra_dfg::{examples, suite};
use cgra_sat::{SatResult, Solver};
use cgra_sched::{Kms, Mobility, TimeSolver, TimeSolverConfig};
use cgra_smt::FdSolver;
use monomap_core::{build_pattern, build_target, space_search};

fn bench_sat_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    // Unsatisfiable pigeonhole: stresses conflict analysis and
    // learning.
    g.bench_function("pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let x: Vec<Vec<_>> = (0..7).map(|_| s.new_vars(6)).collect();
            for row in &x {
                s.add_clause(row.iter().map(|v| v.pos()));
            }
            #[allow(clippy::needless_range_loop)]
            for h in 0..6 {
                for p1 in 0..7 {
                    for p2 in (p1 + 1)..7 {
                        s.add_clause([x[p1][h].neg(), x[p2][h].neg()]);
                    }
                }
            }
            assert_eq!(s.solve(), SatResult::Unsat);
        })
    });
    g.finish();
}

fn bench_fd_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("ordering_chain_20", |b| {
        b.iter(|| {
            let mut fd = FdSolver::new();
            let xs: Vec<_> = (0..20).map(|_| fd.new_int(0..20)).collect();
            for w in xs.windows(2) {
                fd.require_binary(w[0], w[1], |a, b| a < b);
            }
            assert!(fd.solve().is_sat());
        })
    });
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let dfg = suite::generate("hotspot3D"); // largest kernel (57 nodes)
    g.bench_function("mobility_hotspot3D", |b| {
        b.iter(|| Mobility::compute(&dfg).unwrap())
    });
    let mobility = Mobility::compute(&dfg).unwrap();
    g.bench_function("kms_fold_hotspot3D_ii3", |b| {
        b.iter(|| Kms::with_slack(&mobility, 3, 1))
    });
    let cgra = Cgra::new(5, 5).unwrap();
    g.bench_function("time_solve_hotspot3D_5x5", |b| {
        b.iter(|| {
            let cfg = TimeSolverConfig::for_cgra(&cgra).with_window_slack(1);
            let mut solver = TimeSolver::new(&dfg, 3, cfg).unwrap();
            solver.solve_outcome()
        })
    });
    g.finish();
}

fn bench_monomorphism(c: &mut Criterion) {
    let mut g = c.benchmark_group("iso");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    // Space phase of the running example at the paper's II = 4, for
    // growing CGRA sizes: the paper's core scalability claim is that
    // this stays cheap.
    let dfg = examples::running_example();
    for size in [2usize, 5, 10, 20] {
        let cgra = Cgra::new(size, size).unwrap();
        let cfg = TimeSolverConfig::for_cgra(&cgra);
        let sol = TimeSolver::new(&dfg, 4, cfg)
            .unwrap()
            .solve()
            .expect("running example schedulable at II=4");
        g.bench_with_input(
            BenchmarkId::new("space_phase_running_example", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let (outcome, _) = space_search(&dfg, &cgra, &sol, 10_000_000, None);
                    outcome
                })
            },
        );
    }
    // Target construction alone, 20x20.
    let cgra = Cgra::new(20, 20).unwrap();
    g.bench_function("build_target_20x20_ii4", |b| {
        b.iter(|| build_target(&cgra, 4, 1))
    });
    let cfg = TimeSolverConfig::for_cgra(&cgra);
    let sol = TimeSolver::new(&dfg, 4, cfg).unwrap().solve().unwrap();
    g.bench_function("build_pattern_running_example", |b| {
        b.iter(|| build_pattern(&dfg, &sol))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sat_core,
    bench_fd_layer,
    bench_scheduling,
    bench_monomorphism
);
criterion_main!(benches);
