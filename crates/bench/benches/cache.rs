//! Cache-effectiveness benchmark (ISSUE 5 acceptance): a cache hit
//! must be orders of magnitude (≥ 100×) cheaper than a cold solve.
//!
//! * `cold_solve` — the full decoupled SMT + monomorphism pipeline per
//!   kernel (a fresh uncached request each iteration, measured through
//!   the same `CachedMappingService` entry point the daemon uses — the
//!   canonicalization + lookup overhead is included, then the engine
//!   runs).
//! * `cache_hit` — the same request warmed: canonicalization, digest,
//!   sharded lookup and placement translation only.
//!
//! The run prints a speedup summary line per kernel and asserts the
//! suite-aggregate cold/hit ratio is ≥ 100× (in practice it is three
//! to four orders of magnitude: cold solves are 100s of µs to 100s of
//! ms, hits are single-digit µs).
//!
//! * `warm_start_replay` — the restart path (ISSUE 9): rebuilding the
//!   hot tier from the on-disk log vs cold re-solving the suite.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use cgra_arch::Cgra;
use cgra_dfg::suite;
use monomap_core::api::{EngineId, MapRequest, MappingService};
use monomap_service::{CacheDisposition, CachedMappingService, DiskLog, MapCache, TieredCache};

/// A representative spread of the 17-kernel suite: small, medium and
/// the largest kernels (full-suite timing lives in `summary`).
const KERNELS: [&str; 4] = ["bitcount", "susan", "sha2", "aes"];

fn fresh_service() -> CachedMappingService {
    let cgra = Cgra::new(4, 4).unwrap();
    CachedMappingService::new(MappingService::new(&cgra), 1024)
}

fn bench_cold_vs_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_cache");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(20);
    for name in KERNELS {
        let dfg = suite::generate(name);
        // Cold: a brand-new cache every iteration (the solve dominates;
        // service construction is microseconds).
        group.bench_function(format!("cold_solve/{name}"), |b| {
            b.iter(|| {
                let service = fresh_service();
                let (report, d) = service.map(&MapRequest::new(EngineId::Decoupled, dfg.clone()));
                assert_eq!(d, CacheDisposition::Miss);
                report
            });
        });
        // Hit: one warmed service, repeated lookups.
        let service = fresh_service();
        let request = MapRequest::new(EngineId::Decoupled, dfg.clone());
        let (_, first) = service.map(&request);
        assert_eq!(first, CacheDisposition::Miss);
        group.bench_function(format!("cache_hit/{name}"), |b| {
            b.iter(|| {
                let (report, d) = service.map(&request);
                assert_eq!(d, CacheDisposition::Hit);
                report
            });
        });
    }
    group.finish();
}

/// Whole-suite summary: total cold time vs total hit time plus the
/// per-kernel speedup, printed in one table (this is the number cited
/// in CHANGES.md).
fn bench_suite_summary(c: &mut Criterion) {
    let _ = c;
    let service = fresh_service();
    println!("\nmapping_cache/summary (17-kernel suite, decoupled engine, 4x4 torus)");
    println!(
        "{:<16} {:>14} {:>12} {:>10}",
        "kernel", "cold", "hit", "speedup"
    );
    let mut total_cold = Duration::ZERO;
    let mut total_hit = Duration::ZERO;
    let mut worst_speedup = f64::INFINITY;
    for name in suite::names() {
        let request = MapRequest::new(EngineId::Decoupled, suite::generate(name));
        let started = Instant::now();
        let (report, d) = service.map(&request);
        let cold = started.elapsed();
        assert_eq!(d, CacheDisposition::Miss);
        assert!(report.outcome.is_mapped(), "{name}: {:?}", report.outcome);
        // Median-of-9 hit latency (hits are microseconds; a single
        // sample is noise).
        let mut samples: Vec<Duration> = (0..9)
            .map(|_| {
                let started = Instant::now();
                let (_, d) = service.map(&request);
                assert_eq!(d, CacheDisposition::Hit);
                started.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let hit = samples[samples.len() / 2];
        let speedup = cold.as_secs_f64() / hit.as_secs_f64().max(1e-9);
        worst_speedup = worst_speedup.min(speedup);
        total_cold += cold;
        total_hit += hit;
        println!(
            "{:<16} {:>14} {:>12} {:>9.0}x",
            name,
            format!("{:.3?}", cold),
            format!("{:.3?}", hit),
            speedup,
        );
    }
    let suite_speedup = total_cold.as_secs_f64() / total_hit.as_secs_f64().max(1e-9);
    println!(
        "{:<16} {:>14} {:>12} {:>9.0}x  (worst kernel {:.0}x)",
        "TOTAL",
        format!("{:.3?}", total_cold),
        format!("{:.3?}", total_hit),
        suite_speedup,
        worst_speedup,
    );
    // Acceptance bar: across the 17-kernel suite, hit latency is
    // >= 100x below the cold solve. (Per-kernel ratios vary: tiny
    // kernels cold-solve in ~100 µs, so their individual speedups are
    // 15-30x, while hard kernels reach 10^4x.)
    assert!(
        suite_speedup >= 100.0,
        "acceptance: suite-aggregate hit latency must be >= 100x below the cold \
         solve (measured {suite_speedup:.0}x)"
    );
}

/// Warm-start replay (ISSUE 9): rebuilding the hot tier from the disk
/// log must be orders of magnitude cheaper than re-solving the suite —
/// that difference is what `--cache-dir` buys a restarted daemon.
fn bench_warm_start_replay(c: &mut Criterion) {
    let _ = c;
    let dir = std::env::temp_dir().join(format!("monomap-cache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let disk_backed = || {
        let cgra = Cgra::new(4, 4).unwrap();
        let mut tiers = TieredCache::new(MapCache::new(1024));
        tiers.push_store(Box::new(DiskLog::open(&dir, 4096).unwrap()));
        CachedMappingService::with_tiers(MappingService::new(&cgra), tiers)
    };

    // Populate the log with the whole suite, timing the cold solves.
    let service = disk_backed();
    let mut cold_total = Duration::ZERO;
    for name in suite::names() {
        let request = MapRequest::new(EngineId::Decoupled, suite::generate(name));
        let started = Instant::now();
        let (_, d) = service.map(&request);
        cold_total += started.elapsed();
        assert_eq!(d, CacheDisposition::Miss);
    }
    drop(service);

    // Restart: median-of-5 replay of the same log into a fresh service.
    let mut samples: Vec<Duration> = (0..5)
        .map(|_| {
            let service = disk_backed();
            let started = Instant::now();
            let replayed = service.warm_start();
            let replay = started.elapsed();
            assert_eq!(replayed as usize, suite::names().len());
            // Replayed entries really serve: one spot check per round.
            let (_, d) = service.map(&MapRequest::new(
                EngineId::Decoupled,
                suite::generate("susan"),
            ));
            assert_eq!(d, CacheDisposition::Hit);
            replay
        })
        .collect();
    samples.sort_unstable();
    let replay = samples[samples.len() / 2];
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_total.as_secs_f64() / replay.as_secs_f64().max(1e-9);
    println!(
        "\nmapping_cache/warm_start_replay (17-kernel suite): \
         cold re-solve {cold_total:.3?} vs log replay {replay:.3?} ({speedup:.0}x)"
    );
    // Acceptance bar: replaying the log beats re-solving the suite by
    // >= 100x (in practice decode + insert is low single-digit ms).
    assert!(
        speedup >= 100.0,
        "acceptance: warm-start replay must be >= 100x cheaper than a cold \
         re-solve of the suite (measured {speedup:.0}x)"
    );
}

criterion_group!(
    benches,
    bench_cold_vs_hit,
    bench_suite_summary,
    bench_warm_start_replay
);
criterion_main!(benches);
