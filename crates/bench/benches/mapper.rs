//! Criterion end-to-end benchmarks: the decoupled mapper vs the
//! coupled baseline across CGRA sizes — the wall-clock shape behind
//! Table III and Fig. 5.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra_arch::Cgra;
use cgra_baseline::{CoupledConfig, CoupledMapper};
use cgra_dfg::{examples, suite};
use monomap_core::DecoupledMapper;

fn bench_decoupled_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("decoupled");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    // The headline: end-to-end decoupled mapping stays flat as the
    // CGRA grows (Fig. 5's lower curve).
    let dfg = suite::generate("susan");
    for size in [2usize, 5, 10, 20] {
        let cgra = Cgra::new(size, size).unwrap();
        g.bench_with_input(BenchmarkId::new("susan", size), &size, |b, _| {
            b.iter(|| {
                DecoupledMapper::new(&cgra)
                    .map(&dfg)
                    .expect("susan maps at every size")
            })
        });
    }
    let running = examples::running_example();
    let cgra = Cgra::new(2, 2).unwrap();
    g.bench_function("running_example_2x2", |b| {
        b.iter(|| DecoupledMapper::new(&cgra).map(&running).unwrap())
    });
    g.finish();
}

fn bench_coupled_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("coupled");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    // The coupled baseline on the same kernel, growing CGRA: the upper
    // curve of Fig. 5. Kept to small sizes so the bench suite stays
    // fast — the full curve is produced by the fig5 binary.
    let dfg = examples::stream_scale();
    for size in [2usize, 3, 4] {
        let cgra = Cgra::new(size, size).unwrap();
        g.bench_with_input(BenchmarkId::new("stream_scale", size), &size, |b, _| {
            b.iter(|| {
                CoupledMapper::with_config(&cgra, CoupledConfig::default())
                    .map(&dfg)
                    .expect("stream_scale maps at small sizes")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decoupled_scaling, bench_coupled_scaling);
criterion_main!(benches);
