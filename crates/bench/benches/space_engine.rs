//! Criterion benchmarks for the reworked space phase.
//!
//! * `target_reuse` — the tentpole amortisation: at a fixed II on the
//!   5×5 CGRA, running the monomorphism search over several enumerated
//!   time solutions with a per-attempt `build_target` rebuild (the old
//!   `space_search` behaviour) vs one [`SpaceEngine`] whose cached
//!   target every attempt shares. The engine variant constructs the
//!   target exactly once per batch.
//! * `portfolio` — end-to-end mapping of the 5×5 suite kernels with the
//!   serial path vs the racing portfolio; the achieved II is asserted
//!   identical.
//! * `capability_domains` — per-attempt space search on the 5×5 suite,
//!   homogeneous vs the heterogeneous mem-left/mul-checkerboard grid:
//!   compatibility filtering must not regress the search (the filtered
//!   candidate domains are strictly smaller, so hard instances tend to
//!   get faster per attempt).
//!
//! Both `target_reuse` and `portfolio` run a heterogeneous variant of
//! every kernel alongside the homogeneous rows, so the cached-target
//! and racing paths are exercised on non-uniform grids too.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra_arch::{CapabilityProfile, Cgra};
use cgra_dfg::suite;
use cgra_sched::{TimeSolution, TimeSolver, TimeSolverConfig};
use monomap_core::{space_search, DecoupledMapper, MapperConfig, SpaceEngine, SpaceOutcome};

const KERNELS: [&str; 3] = ["susan", "gsm", "bitcount"];
const ATTEMPTS: usize = 8;

/// The two grids every group covers: the paper's homogeneous 5×5 and
/// the standard heterogeneous profile on the same dimensions.
fn grids() -> [(&'static str, Cgra); 2] {
    let homo = Cgra::new(5, 5).unwrap();
    let het = Cgra::new(5, 5)
        .unwrap()
        .with_capability_profile(CapabilityProfile::MemLeftMulCheckerboard);
    [("5x5", homo), ("5x5-het", het)]
}

/// Enumerates up to `ATTEMPTS` schedules of `name` at its smallest
/// feasible II on the 5×5 CGRA (widening the window slack until the
/// level is feasible).
fn schedules(cgra: &Cgra, name: &str) -> (cgra_dfg::Dfg, Vec<TimeSolution>) {
    let dfg = suite::generate(name);
    let mii = cgra_sched::min_ii(&dfg, cgra);
    for ii in mii..mii + 8 {
        for slack in 0..=2 {
            let cfg = TimeSolverConfig::for_cgra(cgra).with_window_slack(slack);
            let mut solver = TimeSolver::new(&dfg, ii, cfg).expect("valid suite kernel");
            let (sols, _) = solver.enumerate_solutions(ATTEMPTS);
            if !sols.is_empty() {
                return (dfg, sols);
            }
        }
    }
    panic!("{name} has no schedule near mII on 5x5");
}

fn bench_target_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("target_reuse");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (grid, cgra) in grids() {
        for name in KERNELS {
            let (dfg, sols) = schedules(&cgra, name);
            let id = format!("{name}/{grid}");
            // Old shape: every attempt rebuilds the full MRRG target.
            g.bench_with_input(
                BenchmarkId::new("rebuild_per_attempt", &id),
                &sols,
                |b, sols| {
                    b.iter(|| {
                        let mut found = 0usize;
                        for sol in sols {
                            let (outcome, _) = space_search(&dfg, &cgra, sol, 2_000_000, None);
                            if matches!(outcome, SpaceOutcome::Found(_)) {
                                found += 1;
                            }
                        }
                        found
                    })
                },
            );
            // New shape: one engine per batch; the target is built once
            // and shared by all attempts at this II.
            g.bench_with_input(
                BenchmarkId::new("engine_amortised", &id),
                &sols,
                |b, sols| {
                    b.iter(|| {
                        let mut engine = SpaceEngine::new(&cgra);
                        let mut found = 0usize;
                        for sol in sols {
                            let (outcome, _) = engine.search(&dfg, sol, 2_000_000, None);
                            if matches!(outcome, SpaceOutcome::Found(_)) {
                                found += 1;
                            }
                        }
                        assert_eq!(engine.target_builds(), 1, "one build per batch");
                        found
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (grid, cgra) in grids() {
        for name in KERNELS {
            let dfg = suite::generate(name);
            let serial_ii = DecoupledMapper::new(&cgra)
                .map(&dfg)
                .expect("suite kernel maps")
                .mapping
                .ii();
            let id = format!("{name}/{grid}");
            g.bench_with_input(BenchmarkId::new("serial", &id), &dfg, |b, dfg| {
                b.iter(|| {
                    let r = DecoupledMapper::new(&cgra).map(dfg).unwrap();
                    assert_eq!(r.mapping.ii(), serial_ii);
                    r.mapping.ii()
                })
            });
            g.bench_with_input(BenchmarkId::new("race4", &id), &dfg, |b, dfg| {
                b.iter(|| {
                    let cfg = MapperConfig::new().with_space_parallelism(4);
                    let r = DecoupledMapper::with_config(&cgra, cfg).map(dfg).unwrap();
                    assert_eq!(r.mapping.ii(), serial_ii, "portfolio II matches serial");
                    r.mapping.ii()
                })
            });
        }
    }
    g.finish();
}

/// The heterogeneity acceptance bench: per-attempt monomorphism search
/// over the same number of enumerated schedules, homogeneous vs the
/// compatibility-filtered heterogeneous grid. Filtering only removes
/// candidates, so the `het` rows must not regress against `homo` —
/// they search strictly smaller domains (the schedules themselves
/// differ, as the heterogeneous time phase respects per-class
/// capacities).
fn bench_capability_domains(c: &mut Criterion) {
    let mut g = c.benchmark_group("capability_domains");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (grid, cgra) in grids() {
        for name in KERNELS {
            let (dfg, sols) = schedules(&cgra, name);
            g.bench_with_input(BenchmarkId::new(grid, name), &sols, |b, sols| {
                b.iter(|| {
                    let mut engine = SpaceEngine::new(&cgra);
                    let mut found = 0usize;
                    let mut steps = 0u64;
                    for sol in sols {
                        let (outcome, s) = engine.search(&dfg, sol, 2_000_000, None);
                        steps += s;
                        if matches!(outcome, SpaceOutcome::Found(_)) {
                            found += 1;
                        }
                    }
                    (found, steps)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_target_reuse,
    bench_portfolio,
    bench_capability_domains
);
criterion_main!(benches);
