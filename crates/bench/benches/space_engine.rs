//! Criterion benchmarks for the reworked space phase.
//!
//! * `target_reuse` — the tentpole amortisation: at a fixed II on the
//!   5×5 CGRA, running the monomorphism search over several enumerated
//!   time solutions with a per-attempt `build_target` rebuild (the old
//!   `space_search` behaviour) vs one [`SpaceEngine`] whose cached
//!   target every attempt shares. The engine variant constructs the
//!   target exactly once per batch.
//! * `portfolio` — end-to-end mapping of the 5×5 suite kernels with the
//!   serial path vs the racing portfolio; the achieved II is asserted
//!   identical.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgra_arch::Cgra;
use cgra_dfg::suite;
use cgra_sched::{TimeSolution, TimeSolver, TimeSolverConfig};
use monomap_core::{space_search, DecoupledMapper, MapperConfig, SpaceEngine, SpaceOutcome};

const KERNELS: [&str; 3] = ["susan", "gsm", "bitcount"];
const ATTEMPTS: usize = 8;

/// Enumerates up to `ATTEMPTS` schedules of `name` at its smallest
/// feasible II on the 5×5 CGRA (widening the window slack until the
/// level is feasible).
fn schedules(cgra: &Cgra, name: &str) -> (cgra_dfg::Dfg, Vec<TimeSolution>) {
    let dfg = suite::generate(name);
    let mii = cgra_sched::min_ii(&dfg, cgra);
    for ii in mii..mii + 8 {
        for slack in 0..=2 {
            let cfg = TimeSolverConfig::for_cgra(cgra).with_window_slack(slack);
            let mut solver = TimeSolver::new(&dfg, ii, cfg).expect("valid suite kernel");
            let (sols, _) = solver.enumerate_solutions(ATTEMPTS);
            if !sols.is_empty() {
                return (dfg, sols);
            }
        }
    }
    panic!("{name} has no schedule near mII on 5x5");
}

fn bench_target_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("target_reuse");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let cgra = Cgra::new(5, 5).unwrap();
    for name in KERNELS {
        let (dfg, sols) = schedules(&cgra, name);
        // Old shape: every attempt rebuilds the full MRRG target.
        g.bench_with_input(
            BenchmarkId::new("rebuild_per_attempt", name),
            &sols,
            |b, sols| {
                b.iter(|| {
                    let mut found = 0usize;
                    for sol in sols {
                        let (outcome, _) = space_search(&dfg, &cgra, sol, 2_000_000, None);
                        if matches!(outcome, SpaceOutcome::Found(_)) {
                            found += 1;
                        }
                    }
                    found
                })
            },
        );
        // New shape: one engine per batch; the target is built once and
        // shared by all attempts at this II.
        g.bench_with_input(
            BenchmarkId::new("engine_amortised", name),
            &sols,
            |b, sols| {
                b.iter(|| {
                    let mut engine = SpaceEngine::new(&cgra);
                    let mut found = 0usize;
                    for sol in sols {
                        let (outcome, _) = engine.search(&dfg, sol, 2_000_000, None);
                        if matches!(outcome, SpaceOutcome::Found(_)) {
                            found += 1;
                        }
                    }
                    assert_eq!(engine.target_builds(), 1, "one build per batch");
                    found
                })
            },
        );
    }
    g.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let cgra = Cgra::new(5, 5).unwrap();
    for name in KERNELS {
        let dfg = suite::generate(name);
        let serial_ii = DecoupledMapper::new(&cgra)
            .map(&dfg)
            .expect("suite kernel maps")
            .mapping
            .ii();
        g.bench_with_input(BenchmarkId::new("serial", name), &dfg, |b, dfg| {
            b.iter(|| {
                let r = DecoupledMapper::new(&cgra).map(dfg).unwrap();
                assert_eq!(r.mapping.ii(), serial_ii);
                r.mapping.ii()
            })
        });
        g.bench_with_input(BenchmarkId::new("race4", name), &dfg, |b, dfg| {
            b.iter(|| {
                let cfg = MapperConfig::new().with_space_parallelism(4);
                let r = DecoupledMapper::with_config(&cgra, cfg).map(dfg).unwrap();
                assert_eq!(r.mapping.ii(), serial_ii, "portfolio II matches serial");
                r.mapping.ii()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_target_reuse, bench_portfolio);
criterion_main!(benches);
