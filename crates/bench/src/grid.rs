//! One experiment cell: (benchmark, CGRA size, mapper) under a
//! wall-clock timeout.
//!
//! Cells run through the unified
//! [`MappingService`](monomap_core::api::MappingService): one
//! [`MapRequest`] per cell, engine selected by id, the wall-clock
//! timeout expressed as the request deadline. The per-engine
//! constructor/watchdog glue this module used to carry lives behind
//! the service now.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use cgra_arch::{CapabilityProfile, Cgra};
use cgra_baseline::standard_service;
use cgra_dfg::Dfg;
use monomap_core::api::{EngineId, MapOutcome, MapRequest};
use monomap_core::MapError;

/// Which mapper to run in a cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MapperKind {
    /// The paper's decoupled monomorphism-based mapper.
    Monomorphism,
    /// The SAT-MapIt-style coupled baseline.
    SatMapIt,
    /// The DRESC-style simulated annealer.
    Annealing,
}

impl MapperKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MapperKind::Monomorphism => "monomorphism",
            MapperKind::SatMapIt => "sat-mapit",
            MapperKind::Annealing => "annealing",
        }
    }

    /// The service engine id this kind dispatches to.
    pub fn engine(self) -> EngineId {
        match self {
            MapperKind::Monomorphism => EngineId::Decoupled,
            MapperKind::SatMapIt => EngineId::Coupled,
            MapperKind::Annealing => EngineId::Annealing,
        }
    }
}

/// How a cell ended.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum CellOutcome {
    /// A valid mapping was produced at the reported II.
    Mapped {
        /// Achieved iteration interval.
        ii: usize,
    },
    /// The wall-clock timeout (or internal budget) fired first.
    Timeout,
    /// The II range was exhausted without a solution.
    NoSolution,
}

/// Result of one experiment cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Benchmark name.
    pub benchmark: String,
    /// DFG node count.
    pub nodes: usize,
    /// CGRA side length (rows = cols).
    pub size: usize,
    /// Mapper that ran.
    pub mapper: MapperKind,
    /// Outcome.
    pub outcome: CellOutcome,
    /// `mII` lower bound for this (benchmark, size).
    pub mii: usize,
    /// Wall-clock of the whole cell in seconds.
    pub total_seconds: f64,
    /// Time-phase seconds (decoupled mapper only; 0 otherwise).
    pub time_phase_seconds: f64,
    /// Space-phase seconds (decoupled mapper only; 0 otherwise).
    pub space_phase_seconds: f64,
}

impl CellResult {
    /// The achieved II, if mapped.
    pub fn ii(&self) -> Option<usize> {
        match self.outcome {
            CellOutcome::Mapped { ii } => Some(ii),
            _ => None,
        }
    }

    /// True when the cell timed out.
    pub fn timed_out(&self) -> bool {
        self.outcome == CellOutcome::Timeout
    }
}

/// Runs one cell on a homogeneous `size × size` grid under a
/// wall-clock timeout; see [`run_cell_with_profile`].
pub fn run_cell(dfg: &Dfg, size: usize, kind: MapperKind, timeout: Duration) -> CellResult {
    run_cell_with_profile(dfg, size, CapabilityProfile::Homogeneous, kind, timeout)
}

/// Runs one cell on a `size × size` grid with the given capability
/// profile, under a wall-clock timeout.
///
/// The cell is one [`MapRequest`] with the timeout as its deadline:
/// the service's watchdog raises the engine's cancellation flag when
/// the deadline expires, and the engine returns at its next
/// cancellation point (SAT decisions, solver boundaries, monomorphism
/// DFS steps, annealing temperature steps), so cells never wedge the
/// harness — every engine observes the flag.
pub fn run_cell_with_profile(
    dfg: &Dfg,
    size: usize,
    profile: CapabilityProfile,
    kind: MapperKind,
    timeout: Duration,
) -> CellResult {
    let cgra = Cgra::new(size, size)
        .expect("valid grid size")
        .with_capability_profile(profile);
    let service = standard_service(&cgra);
    let mii = cgra_sched::min_ii(dfg, &cgra);
    let started = Instant::now();
    let report = service.map(&MapRequest::new(kind.engine(), dfg.clone()).with_deadline(timeout));
    let total_seconds = started.elapsed().as_secs_f64();
    let outcome = match &report.outcome {
        MapOutcome::Mapped { ii } => CellOutcome::Mapped { ii: *ii },
        MapOutcome::Failed(MapError::Timeout { .. }) => CellOutcome::Timeout,
        MapOutcome::Failed(_) | MapOutcome::Rejected { .. } => CellOutcome::NoSolution,
    };
    CellResult {
        benchmark: dfg.name().to_string(),
        nodes: dfg.num_nodes(),
        size,
        mapper: kind,
        outcome,
        // The engine reports mII in its stats; failed searches carry
        // default stats, so the bound is kept locally for those rows.
        mii,
        total_seconds,
        time_phase_seconds: report.stats.time_phase_seconds,
        space_phase_seconds: report.stats.space_phase_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::suite;

    #[test]
    fn mono_cell_maps_susan_quickly() {
        let dfg = suite::generate("susan");
        let r = run_cell(&dfg, 5, MapperKind::Monomorphism, Duration::from_secs(60));
        assert_eq!(r.mii, 2);
        assert!(matches!(r.outcome, CellOutcome::Mapped { .. }), "{r:?}");
        assert!(!r.timed_out());
        assert_eq!(r.nodes, 21);
    }

    #[test]
    fn satmapit_cell_times_out_when_squeezed() {
        // A large grid with a millisecond budget must report Timeout,
        // not hang.
        let dfg = suite::generate("hotspot3D");
        let r = run_cell(&dfg, 10, MapperKind::SatMapIt, Duration::from_millis(50));
        assert!(r.timed_out(), "{:?}", r.outcome);
        assert!(r.total_seconds < 30.0, "watchdog released the harness");
    }

    #[test]
    fn annealing_cell_runs() {
        let dfg = cgra_dfg::examples::accumulator();
        let r = run_cell(&dfg, 3, MapperKind::Annealing, Duration::from_secs(30));
        assert!(matches!(r.outcome, CellOutcome::Mapped { .. }));
    }

    #[test]
    fn annealing_cell_times_out_when_squeezed() {
        // Regression: the watchdog used to block forever in `rx.recv()`
        // because the annealing worker had no cancellation point. A
        // hard cell with a millisecond budget must now report Timeout.
        let dfg = suite::generate("hotspot3D");
        let r = run_cell(&dfg, 10, MapperKind::Annealing, Duration::from_millis(20));
        assert!(
            r.timed_out() || r.ii().is_some(),
            "cell must resolve, got {:?}",
            r.outcome
        );
        assert!(r.total_seconds < 30.0, "watchdog released the harness");
    }

    #[test]
    fn heterogeneous_cell_maps_susan() {
        let dfg = suite::generate("susan");
        let r = run_cell_with_profile(
            &dfg,
            5,
            CapabilityProfile::MemLeftMulCheckerboard,
            MapperKind::Monomorphism,
            Duration::from_secs(120),
        );
        assert!(matches!(r.outcome, CellOutcome::Mapped { .. }), "{r:?}");
        // The restricted grid can only raise the II, never lower it.
        assert!(r.ii().unwrap() >= r.mii);
    }

    #[test]
    fn mono_portfolio_cell_matches_serial_ii() {
        use monomap_core::MapperConfig;
        // Not a run_cell path (run_cell always uses defaults), but the
        // same suite kernel through the service: a portfolio-mode
        // request must reach the serial request's II.
        let dfg = suite::generate("susan");
        let cgra = Cgra::new(5, 5).expect("valid grid");
        let service = standard_service(&cgra);
        let serial = service.map(&MapRequest::new(EngineId::Decoupled, dfg.clone()));
        let portfolio = service.map(
            &MapRequest::new(EngineId::Decoupled, dfg.clone())
                .with_config(MapperConfig::new().with_space_parallelism(4)),
        );
        assert_eq!(serial.outcome.ii().expect("maps"), {
            assert!(portfolio.outcome.is_mapped(), "maps in portfolio mode");
            portfolio.outcome.ii().unwrap()
        });
    }
}
