//! # monomap-bench — the paper's evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§V): Table III (II and compile time, ours vs SAT-MapIt, 17
//! benchmarks × 4 CGRA sizes), Fig. 5 (compile time vs CGRA size for
//! `aes`), plus the ablation studies called out in DESIGN.md.
//!
//! Binaries:
//!
//! * `table3` — the full grid with per-cell timeouts
//!   (`cargo run -p monomap-bench --release --bin table3 [--quick]`),
//! * `fig5` — the `aes` scaling curve,
//! * `ablation` — constraint-family, strictness, topology and annealer
//!   ablations.
//!
//! Criterion micro-benchmarks for the substrates live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod report;
pub mod routing;

pub use grid::{run_cell, run_cell_with_profile, CellOutcome, CellResult, MapperKind};
pub use routing::{
    annealing_golden_line, coupled_golden_line, decoupled_golden_line, golden_ii_cap,
    routing_golden_lines, GOLDEN_COUPLED_BUDGET,
};
