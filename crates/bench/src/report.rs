//! Table III / Fig. 5 rendering.

use std::fmt::Write as _;

use crate::{CellResult, MapperKind};

/// Pairs up the mono and baseline cells of one (benchmark, size) and
/// renders a Table III block for one CGRA size.
///
/// Columns follow the paper: benchmark, node count, monomorphism time
/// split into time/space phases, SAT-MapIt time, ΔT (difference), CTR
/// (ratio), II of both mappers and mII. Cells that timed out print
/// `TO`; the averages exclude rows where either tool timed out, exactly
/// as the paper's caption specifies.
pub fn render_size_table(size: usize, cells: &[CellResult], timeout_secs: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== {size}x{size} CGRA (torus), per-cell timeout {timeout_secs:.0}s ==="
    );
    let _ = writeln!(
        out,
        "{:<16}{:>6} | {:>9} {:>8} {:>8} | {:>9} | {:>9} {:>9} | {:>5} {:>5} {:>4}",
        "benchmark",
        "nodes",
        "mono[s]",
        "time[s]",
        "space[s]",
        "satmap[s]",
        "dT[s]",
        "CTR",
        "IIm",
        "IIs",
        "mII"
    );
    let _ = writeln!(out, "{}", "-".repeat(118));

    let benches: Vec<&str> = {
        let mut names: Vec<&str> = cells
            .iter()
            .filter(|c| c.size == size)
            .map(|c| c.benchmark.as_str())
            .collect();
        names.dedup();
        names
    };

    let mut sum_mono = 0.0;
    let mut sum_sat = 0.0;
    let mut sum_dt = 0.0;
    let mut sum_ctr = 0.0;
    let mut counted = 0usize;

    for name in benches {
        let mono = cells.iter().find(|c| {
            c.size == size && c.benchmark == name && c.mapper == MapperKind::Monomorphism
        });
        let sat = cells
            .iter()
            .find(|c| c.size == size && c.benchmark == name && c.mapper == MapperKind::SatMapIt);
        let (Some(mono), Some(sat)) = (mono, sat) else {
            continue;
        };
        let fmt_time = |c: &CellResult| {
            if c.timed_out() {
                "TO".to_string()
            } else {
                format!("{:.2}", c.total_seconds)
            }
        };
        let fmt_ii = |c: &CellResult| match c.ii() {
            Some(ii) => ii.to_string(),
            None => "-".to_string(),
        };
        let both_finished = !mono.timed_out() && !sat.timed_out();
        let (dt, ctr) = if both_finished {
            (
                mono.total_seconds - sat.total_seconds,
                sat.total_seconds / mono.total_seconds.max(1e-9),
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        if both_finished {
            sum_mono += mono.total_seconds;
            sum_sat += sat.total_seconds;
            sum_dt += dt;
            sum_ctr += ctr;
            counted += 1;
        }
        let _ = writeln!(
            out,
            "{:<16}{:>6} | {:>9} {:>8.2} {:>8.2} | {:>9} | {:>9} {:>9} | {:>5} {:>5} {:>4}",
            name,
            mono.nodes,
            fmt_time(mono),
            mono.time_phase_seconds,
            mono.space_phase_seconds,
            fmt_time(sat),
            if dt.is_nan() {
                "-".into()
            } else {
                format!("{dt:.2}")
            },
            if ctr.is_nan() {
                "-".into()
            } else {
                format!("{ctr:.2}")
            },
            fmt_ii(mono),
            fmt_ii(sat),
            mono.mii
        );
    }
    if counted > 0 {
        let n = counted as f64;
        let _ = writeln!(out, "{}", "-".repeat(118));
        let _ = writeln!(
            out,
            "{:<16}{:>6} | {:>9.2} {:>8} {:>8} | {:>9.2} | {:>9.2} {:>9.2} | (averages exclude TO rows: {} counted)",
            "average", "-", sum_mono / n, "-", "-", sum_sat / n, sum_dt / n, sum_ctr / n, counted
        );
    }
    out
}

/// Renders the Fig. 5 series (compile time vs CGRA size) as CSV.
pub fn render_fig5_csv(cells: &[CellResult]) -> String {
    let mut out = String::from("size,mapper,seconds,outcome\n");
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{:.4},{}",
            c.size,
            c.mapper.name(),
            c.total_seconds,
            if c.timed_out() { "timeout" } else { "ok" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellOutcome;

    fn cell(name: &str, size: usize, mapper: MapperKind, secs: f64, to: bool) -> CellResult {
        CellResult {
            benchmark: name.into(),
            nodes: 10,
            size,
            mapper,
            outcome: if to {
                CellOutcome::Timeout
            } else {
                CellOutcome::Mapped { ii: 4 }
            },
            mii: 4,
            total_seconds: secs,
            time_phase_seconds: secs * 0.8,
            space_phase_seconds: secs * 0.1,
        }
    }

    #[test]
    fn table_excludes_timeouts_from_average() {
        let cells = vec![
            cell("a", 5, MapperKind::Monomorphism, 0.5, false),
            cell("a", 5, MapperKind::SatMapIt, 5.0, false),
            cell("b", 5, MapperKind::Monomorphism, 0.2, false),
            cell("b", 5, MapperKind::SatMapIt, 0.0, true),
        ];
        let t = render_size_table(5, &cells, 10.0);
        assert!(t.contains("TO"));
        assert!(t.contains("1 counted"), "{t}");
        assert!(t.contains("10.00"), "CTR 5.0/0.5: {t}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cells = vec![cell("aes", 10, MapperKind::Monomorphism, 0.3, false)];
        let csv = render_fig5_csv(&cells);
        assert!(csv.starts_with("size,mapper"));
        assert!(csv.contains("10,monomorphism,0.3"));
    }
}
