//! Ablation studies for the design decisions called out in DESIGN.md:
//!
//! 1. **Constraint families** — are the paper's capacity/connectivity
//!    additions (§IV-B2/3) actually what makes the first time solution
//!    spatially mappable (§IV-D)?
//! 2. **Strict vs paper connectivity bound** — does tightening the
//!    same-slot bound change II or compile time?
//! 3. **Mesh vs torus topology** — cost of non-uniform degree.
//! 4. **Simulated annealing** — the classic heuristic as a quality and
//!    runtime reference.
//!
//! Usage: ablation [--timeout SECS]

use std::time::{Duration, Instant};

use cgra_arch::{Cgra, Topology};
use cgra_dfg::{suite, Dfg};
use cgra_sched::{min_ii, SolveOutcome, TimeSolver, TimeSolverConfig};
use monomap_bench::{run_cell, MapperKind};
use monomap_core::api::{EngineId, MapRequest, MappingService};
use monomap_core::{space_search, MapperConfig, SpaceOutcome};

/// Runs one decoupled request through a service and reports
/// `(II, wall-clock seconds)` — the shared cell of the mapper-level
/// ablations (all of them vary only the request's configuration).
fn service_cell(service: &MappingService, dfg: &Dfg, config: MapperConfig) -> (Option<usize>, f64) {
    let t0 = Instant::now();
    let report =
        service.map(&MapRequest::new(EngineId::Decoupled, dfg.clone()).with_config(config));
    (report.outcome.ii(), t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut timeout = 8.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                timeout = args[i].parse().expect("--timeout SECS");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    constraint_families();
    strictness(timeout);
    topology(timeout);
    annealing(timeout);
    time_strategy();
}

/// SMT vs IMS-heuristic time phase (both feeding the same monomorphism
/// space phase) — an extension beyond the paper in the spirit of its
/// CRIMSON/PathSeeker related work.
fn time_strategy() {
    use monomap_core::TimeStrategy;
    println!("=== ablation 5: SMT vs IMS-heuristic time phase (5x5) ===");
    println!(
        "{:<16} | {:>8} {:>9} | {:>8} {:>9}",
        "benchmark", "II smt", "t smt", "II ims", "t ims"
    );
    let cgra = Cgra::new(5, 5).unwrap();
    let service = MappingService::new(&cgra);
    for dfg in suite::generate_all() {
        let run = |strategy: TimeStrategy| {
            service_cell(
                &service,
                &dfg,
                MapperConfig::new().with_time_strategy(strategy),
            )
        };
        let (ii_s, t_s) = run(TimeStrategy::Smt);
        let (ii_h, t_h) = run(TimeStrategy::Heuristic);
        println!(
            "{:<16} | {:>8} {:>9.3} | {:>8} {:>9.3}",
            dfg.name(),
            ii_s.map_or("-".into(), |i| i.to_string()),
            t_s,
            ii_h.map_or("-".into(), |i| i.to_string()),
            t_h
        );
    }
    println!();
}

/// For each kernel on a 2×2 CGRA: find the first time solution with
/// the paper's capacity+connectivity constraints and without them, and
/// check whether it admits a monomorphism. Reproduces the motivation
/// for §IV-D: without the added constraint families, time solutions
/// routinely fail in space.
fn constraint_families() {
    println!("=== ablation 1: capacity/connectivity constraint families (2x2) ===");
    println!(
        "{:<16} | {:>22} | {:>22}",
        "benchmark", "families ON: space ok?", "families OFF: space ok?"
    );
    let cgra = Cgra::new(2, 2).unwrap();
    let mut on_ok = 0;
    let mut off_ok = 0;
    let mut rows = 0;
    for dfg in suite::generate_all() {
        let verdict = |enable: bool| -> &'static str {
            let mii = min_ii(&dfg, &cgra);
            for ii in mii..=mii + 8 {
                for slack in 0..=2 {
                    let cfg = TimeSolverConfig::for_cgra(&cgra)
                        .with_window_slack(slack)
                        .with_capacity_constraints(enable)
                        .with_connectivity_constraints(enable);
                    let mut solver = match TimeSolver::new(&dfg, ii, cfg) {
                        Ok(s) => s,
                        Err(_) => return "error",
                    };
                    match solver.solve_outcome() {
                        SolveOutcome::Solution(sol) => {
                            let (space, _) = space_search(&dfg, &cgra, &sol, 2_000_000, None);
                            return match space {
                                SpaceOutcome::Found(_) => "yes",
                                SpaceOutcome::Exhausted => "no",
                                SpaceOutcome::LimitReached => "limit",
                                SpaceOutcome::Cancelled => "timeout",
                            };
                        }
                        SolveOutcome::Unsat => continue,
                        SolveOutcome::Timeout => return "timeout",
                    }
                }
            }
            "no time sol"
        };
        let on = verdict(true);
        let off = verdict(false);
        if on == "yes" {
            on_ok += 1;
        }
        if off == "yes" {
            off_ok += 1;
        }
        rows += 1;
        println!("{:<16} | {:>22} | {:>22}", dfg.name(), on, off);
    }
    println!(
        "first time solution spatially mappable: {on_ok}/{rows} with families, {off_ok}/{rows} without\n"
    );
}

/// Strict (`D_M − 1` same-slot) vs paper (`D_M`) connectivity bound on
/// a 5×5 CGRA.
fn strictness(timeout: f64) {
    println!("=== ablation 2: strict vs paper connectivity bound (5x5) ===");
    println!(
        "{:<16} | {:>8} {:>9} | {:>8} {:>9}",
        "benchmark", "II paper", "t paper", "II strict", "t strict"
    );
    let cgra = Cgra::new(5, 5).unwrap();
    let service = MappingService::new(&cgra);
    for dfg in suite::generate_all() {
        let run = |strict: bool| {
            service_cell(
                &service,
                &dfg,
                MapperConfig::new().with_strict_connectivity(strict),
            )
        };
        let (ii_p, t_p) = run(false);
        let (ii_s, t_s) = run(true);
        let _ = timeout;
        println!(
            "{:<16} | {:>8} {:>9.3} | {:>8} {:>9.3}",
            dfg.name(),
            ii_p.map_or("-".into(), |i| i.to_string()),
            t_p,
            ii_s.map_or("-".into(), |i| i.to_string()),
            t_s
        );
    }
    println!();
}

/// Mesh vs torus (5×5): the mesh's non-uniform degree forces the
/// conservative `D_M = min degree + 1` bound, which can cost II.
fn topology(timeout: f64) {
    println!("=== ablation 3: mesh vs torus topology (5x5) ===");
    println!(
        "{:<16} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "II torus", "t torus", "II mesh", "t mesh"
    );
    // One service per topology: requests share each service's CGRA.
    let torus = MappingService::new(&Cgra::with_topology(5, 5, Topology::Torus).unwrap());
    let mesh = MappingService::new(&Cgra::with_topology(5, 5, Topology::Mesh).unwrap());
    for dfg in suite::generate_all() {
        let run = |service: &MappingService| service_cell(service, &dfg, MapperConfig::new());
        let (ii_t, t_t) = run(&torus);
        let (ii_m, t_m) = run(&mesh);
        let _ = timeout;
        println!(
            "{:<16} | {:>9} {:>9.3} | {:>9} {:>9.3}",
            dfg.name(),
            ii_t.map_or("-".into(), |i| i.to_string()),
            t_t,
            ii_m.map_or("-".into(), |i| i.to_string()),
            t_m
        );
    }
    println!();
}

/// Simulated annealing (DRESC-style) vs the decoupled mapper on a 4×4
/// CGRA, small kernels.
fn annealing(timeout: f64) {
    println!("=== ablation 4: simulated annealing vs decoupled mapper (4x4) ===");
    println!(
        "{:<16} | {:>8} {:>9} | {:>8} {:>9}",
        "benchmark", "II mono", "t mono", "II SA", "t SA"
    );
    for name in ["bitcount", "susan", "sha1", "fft", "basicmath", "gsm"] {
        let dfg = suite::generate(name);
        let mono = run_cell(
            &dfg,
            4,
            MapperKind::Monomorphism,
            Duration::from_secs_f64(timeout),
        );
        let sa = run_cell(
            &dfg,
            4,
            MapperKind::Annealing,
            Duration::from_secs_f64(timeout),
        );
        let show = |c: &monomap_bench::CellResult| {
            (
                c.ii().map_or("-".to_string(), |i| i.to_string()),
                c.total_seconds,
            )
        };
        let (ii_m, t_m) = show(&mono);
        let (ii_a, t_a) = show(&sa);
        println!(
            "{:<16} | {:>8} {:>9.3} | {:>8} {:>9.3}",
            name, ii_m, t_m, ii_a, t_a
        );
    }
    println!();
}
