//! ISSUE-10 frontend benchmark: compiling the committed `.mk` corpus
//! vs actually mapping it, in JSON for committing alongside the code
//! (`BENCH_PR10.json`).
//!
//! Usage:
//!   compile_bench [--kernels nw,fft] [--kernels-dir DIR] [--repeat N] [--out FILE]
//!
//! The frontend's whole pitch is that the text front door is free:
//! lexing, parsing and DFG construction must be measurement noise
//! next to the solve the request exists to run. Per kernel the
//! benchmark compiles the committed `.mk` source `repeat` times
//! (keeping the fastest run), verifies the compiled digest against
//! the programmatic suite, then cold-solves the kernel once on the
//! decoupled engine. The headline number is
//! `compile_share_of_solve` — total best-case compile time over total
//! cold solve time — and the process exits nonzero if compilation
//! costs more than [`MAX_COMPILE_SHARE`] of the solving it fronts.
//!
//! IIs and digests are exact; wall-clock fields vary run to run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cgra_arch::Cgra;
use cgra_dfg::suite;
use monomap_core::api::{EngineId, MapRequest, MappingService};
use serde::{Serialize, Value};

/// The lock: compiling the corpus must cost at most this share of
/// cold-solving it (it lands around 1% in release builds; the slack
/// absorbs shared-runner jitter without ever letting "the frontend is
/// free" silently stop being true).
const MAX_COMPILE_SHARE: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernels: Vec<String> = suite::names().iter().map(|s| s.to_string()).collect();
    let mut kernels_dir = PathBuf::from("kernels");
    let mut repeat: u32 = 100;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernels" => {
                i += 1;
                kernels = args[i].split(',').map(str::to_string).collect();
            }
            "--kernels-dir" => {
                i += 1;
                kernels_dir = PathBuf::from(&args[i]);
            }
            "--repeat" => {
                i += 1;
                repeat = args[i].parse().expect("--repeat takes a count");
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cgra = Cgra::new(4, 4).expect("4x4");
    let service = MappingService::new(&cgra);

    let mut rows = Vec::new();
    let mut compile_total = Duration::ZERO;
    let mut solve_total = Duration::ZERO;
    for name in &kernels {
        eprintln!("{name}...");
        let path = kernels_dir.join(format!("{name}.mk"));
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));

        // Best-of-N compile: the fastest run is the cost of the work
        // itself, not of a cold cache or a scheduler hiccup.
        let mut best = Duration::MAX;
        let mut dfg = None;
        for _ in 0..repeat.max(1) {
            let started = Instant::now();
            let compiled = monomap_frontend::compile_one(&source)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            best = best.min(started.elapsed());
            dfg = Some(compiled);
        }
        let dfg = dfg.expect("at least one compile ran");
        assert_eq!(
            dfg.digest(),
            suite::generate(name).digest(),
            "{name}: committed .mk drifted from the programmatic suite"
        );
        compile_total += best;

        // One cold decoupled solve — the thing the compile fronts.
        let request = MapRequest::new(EngineId::Decoupled, dfg.clone());
        let started = Instant::now();
        let report = service.map(&request);
        let solve = started.elapsed();
        let ii = report.outcome.ii();
        assert!(ii.is_some(), "{name}: suite kernel failed to map on 4x4");
        solve_total += solve;

        rows.push(Value::Map(vec![
            ("kernel".to_string(), name.to_value()),
            ("digest".to_string(), dfg.digest().to_hex().to_value()),
            ("nodes".to_string(), dfg.num_nodes().to_value()),
            ("ii".to_string(), ii.expect("asserted above").to_value()),
            ("compile_seconds".to_string(), best.as_secs_f64().to_value()),
            ("solve_seconds".to_string(), solve.as_secs_f64().to_value()),
        ]));
    }

    let share = compile_total.as_secs_f64() / solve_total.as_secs_f64().max(1e-9);
    eprintln!(
        "compile {:.3?} vs solve {:.3?} => {:.2}% of the solve",
        compile_total,
        solve_total,
        share * 100.0
    );
    assert!(
        share <= MAX_COMPILE_SHARE,
        "frontend is no longer noise: compiling the corpus cost {:.2}% of solving it \
         (cap {:.0}%)",
        share * 100.0,
        MAX_COMPILE_SHARE * 100.0
    );

    let report = Value::Map(vec![
        ("bench".to_string(), "compile".to_value()),
        (
            "config".to_string(),
            Value::Map(vec![
                ("grid".to_string(), "4x4".to_value()),
                ("engine".to_string(), "decoupled".to_value()),
                ("repeat".to_string(), repeat.to_value()),
                (
                    "max_compile_share".to_string(),
                    MAX_COMPILE_SHARE.to_value(),
                ),
            ]),
        ),
        ("kernels".to_string(), Value::Seq(rows)),
        (
            "compile_total_seconds".to_string(),
            compile_total.as_secs_f64().to_value(),
        ),
        (
            "solve_total_seconds".to_string(),
            solve_total.as_secs_f64().to_value(),
        ),
        ("compile_share_of_solve".to_string(), share.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("write --out file");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
