//! ISSUE-6 perf trajectory: the incremental time solver vs per-level
//! rebuilds, in stable JSON for committing alongside the code.
//!
//! Usage:
//!   bench_summary [--kernels nw,hotspot3D] [--repeat 5] [--out FILE]
//!
//! Two measurements:
//!
//! * `ladder` — the time phase alone, per suite kernel on a 4×4: walk
//!   the `(II, slack)` escalation ladder (`II ∈ {mII, mII+1}`, slack
//!   `0..=2`, one solve per level) twice — once rebuilding a fresh
//!   [`TimeSolver`] per level (the pre-ISSUE-6 behaviour), once on a
//!   persistent [`IncrementalTimeSolver`] per II that widens by guarded
//!   clause additions. The gap is the re-encode + re-learn cost the
//!   live instance avoids.
//! * `mapper` — end-to-end `DecoupledMapper::map` with the incremental
//!   UNSAT screen on vs off, on connectivity-bound star kernels (2×2)
//!   where barren slack levels actually occur, reporting the screen's
//!   `solver_reuses` / `clauses_retained` accounting.
//!
//! Wall-clock numbers are machine-dependent; each measurement repeats
//! `--repeat` times and reports the minimum. The JSON key order is
//! stable, so committed snapshots diff cleanly.

use std::time::Instant;

use cgra_arch::Cgra;
use cgra_dfg::{suite, Dfg, DfgBuilder, Operation as Op};
use cgra_sched::{min_ii, IncrementalTimeSolver, TimeSolver, TimeSolverConfig};
use monomap_core::{DecoupledMapper, MapperConfig};
use serde::{Serialize, Value};

/// IIs above `mII` each ladder kernel climbs through.
const LADDER_EXTRA_IIS: usize = 1;
/// Slack levels per II on the ladder.
const LADDER_MAX_SLACK: usize = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernels: Vec<String> = vec!["nw".into(), "hotspot3D".into()];
    let mut repeat = 5usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernels" => {
                i += 1;
                kernels = args[i].split(',').map(str::to_string).collect();
            }
            "--repeat" => {
                i += 1;
                repeat = args[i].parse().expect("--repeat N");
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ladder: Vec<Value> = kernels
        .iter()
        .map(|name| ladder_entry(name, &suite::generate(name), repeat))
        .collect();
    let mapper: Vec<Value> = [4usize, 5, 6, 8]
        .iter()
        .map(|&k| mapper_entry(k, repeat))
        .collect();

    let report = Value::Map(vec![
        ("bench".to_string(), "bench_summary".to_value()),
        (
            "config".to_string(),
            Value::Map(vec![
                ("ladder_grid".to_string(), "4x4".to_value()),
                ("ladder_extra_iis".to_string(), LADDER_EXTRA_IIS.to_value()),
                ("ladder_max_slack".to_string(), LADDER_MAX_SLACK.to_value()),
                ("mapper_grid".to_string(), "2x2".to_value()),
                ("repeat".to_string(), repeat.to_value()),
            ]),
        ),
        ("ladder".to_string(), Value::Seq(ladder)),
        ("mapper".to_string(), Value::Seq(mapper)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("write --out file");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// Times one full ladder walk with per-level rebuilds.
fn walk_rebuild(dfg: &Dfg, cgra: &Cgra, mii: usize) -> f64 {
    let t0 = Instant::now();
    for ii in mii..=mii + LADDER_EXTRA_IIS {
        for slack in 0..=LADDER_MAX_SLACK {
            let cfg = TimeSolverConfig::for_cgra(cgra).with_window_slack(slack);
            let mut solver = TimeSolver::new(dfg, ii, cfg).expect("suite kernels validate");
            let _ = solver.solve_outcome();
        }
    }
    t0.elapsed().as_secs_f64()
}

/// Times one full ladder walk on a persistent per-II instance.
fn walk_incremental(dfg: &Dfg, cgra: &Cgra, mii: usize) -> f64 {
    let t0 = Instant::now();
    for ii in mii..=mii + LADDER_EXTRA_IIS {
        let cfg = TimeSolverConfig::for_cgra(cgra).with_window_slack(0);
        let mut solver = IncrementalTimeSolver::new(dfg, ii, cfg).expect("suite kernels validate");
        for slack in 0..=LADDER_MAX_SLACK {
            solver.widen_to(slack);
            let _ = solver.solve_outcome();
        }
    }
    t0.elapsed().as_secs_f64()
}

fn ladder_entry(name: &str, dfg: &Dfg, repeat: usize) -> Value {
    let cgra = Cgra::new(4, 4).expect("4x4");
    let mii = min_ii(dfg, &cgra);
    eprintln!("ladder {name} (mII {mii})...");
    let rebuild = (0..repeat)
        .map(|_| walk_rebuild(dfg, &cgra, mii))
        .fold(f64::INFINITY, f64::min);
    let incremental = (0..repeat)
        .map(|_| walk_incremental(dfg, &cgra, mii))
        .fold(f64::INFINITY, f64::min);
    eprintln!("    rebuild {rebuild:.4}s incremental {incremental:.4}s");
    Value::Map(vec![
        ("kernel".to_string(), name.to_value()),
        ("mii".to_string(), mii.to_value()),
        ("rebuild_seconds".to_string(), rebuild.to_value()),
        ("incremental_seconds".to_string(), incremental.to_value()),
        ("speedup".to_string(), (rebuild / incremental).to_value()),
    ])
}

/// One producer feeding `k` same-slot consumers: the connectivity-bound
/// shape whose barren slack levels exercise the mapper's UNSAT screen.
fn star_k(k: usize) -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let c = b.unary("c", Op::Neg, x);
    for i in 0..k {
        b.unary(format!("k{i}"), Op::Not, c);
    }
    b.build().expect("star kernels validate")
}

fn mapper_entry(k: usize, repeat: usize) -> Value {
    let cgra = Cgra::new(2, 2).expect("2x2");
    let dfg = star_k(k);
    eprintln!("mapper star{k}...");
    let time_with = |incremental: bool| {
        let cfg = MapperConfig::new().with_time_incremental(incremental);
        (0..repeat)
            .map(|_| {
                let t0 = Instant::now();
                let r = DecoupledMapper::with_config(&cgra, cfg.clone())
                    .map(&dfg)
                    .expect("star kernels map");
                (t0.elapsed().as_secs_f64(), r)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("repeat >= 1")
    };
    let (on_s, on) = time_with(true);
    let (off_s, _) = time_with(false);
    eprintln!(
        "    screened {on_s:.4}s rebuild {off_s:.4}s reuses {}",
        on.stats.solver_reuses
    );
    Value::Map(vec![
        ("kernel".to_string(), format!("star{k}").to_value()),
        ("ii".to_string(), on.mapping.ii().to_value()),
        ("screened_seconds".to_string(), on_s.to_value()),
        ("rebuild_seconds".to_string(), off_s.to_value()),
        (
            "solver_reuses".to_string(),
            on.stats.solver_reuses.to_value(),
        ),
        (
            "clauses_retained".to_string(),
            on.stats.clauses_retained.to_value(),
        ),
        (
            "time_encode_seconds".to_string(),
            on.stats.time_encode_seconds.to_value(),
        ),
        (
            "time_solve_seconds".to_string(),
            on.stats.time_solve_seconds.to_value(),
        ),
    ])
}
