//! ISSUE-9 persistence benchmark: warm-start replay vs cold re-solve
//! over the 17-kernel suite, in JSON for committing alongside the code
//! (`BENCH_PR9.json`).
//!
//! Usage:
//!   persistence_bench [--kernels nw,fft] [--out FILE]
//!
//! The scenario is a daemon restart. First a disk-backed
//! [`CachedMappingService`] cold-solves every kernel (that is the price
//! the cache exists to avoid), writing each result through to the
//! append-only log. Then a fresh service over the same directory
//! replays the log into memory — [`CachedMappingService::warm_start`],
//! exactly what `monomapd --cache-dir` does at boot — and serves every
//! kernel again. The report records the cold total, the replay total
//! (log decode + hot-tier insert), the post-replay hit total, and the
//! ratio between re-solving the suite and replaying it.
//!
//! IIs are exact search results; wall-clock fields vary run to run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cgra_arch::Cgra;
use cgra_dfg::suite;
use monomap_core::api::{EngineId, MapRequest, MappingService};
use monomap_service::{CacheDisposition, CachedMappingService, DiskLog, MapCache, TieredCache};
use serde::{Serialize, Value};

/// Hot-tier capacity: comfortably above the suite size.
const MEM_CAPACITY: usize = 1024;
/// Disk-log capacity (entries retained across compactions).
const DISK_CAPACITY: usize = 4096;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernels: Vec<String> = suite::names().iter().map(|s| s.to_string()).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernels" => {
                i += 1;
                kernels = args[i].split(',').map(str::to_string).collect();
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let dir = scratch_dir();
    let disk_backed = |dir: &PathBuf| {
        let cgra = Cgra::new(4, 4).expect("4x4");
        let mut tiers = TieredCache::new(MapCache::new(MEM_CAPACITY));
        tiers.push_store(Box::new(
            DiskLog::open(dir, DISK_CAPACITY).expect("open disk log"),
        ));
        CachedMappingService::with_tiers(MappingService::new(&cgra), tiers)
    };

    // Pass 1: cold solves, written through to the log.
    let service = disk_backed(&dir);
    let mut rows = Vec::new();
    let mut cold_total = Duration::ZERO;
    for name in &kernels {
        eprintln!("{name}...");
        let request = MapRequest::new(EngineId::Decoupled, suite::generate(name));
        let started = Instant::now();
        let (report, d) = service.map(&request);
        let cold = started.elapsed();
        assert_eq!(d, CacheDisposition::Miss, "{name}: pass 1 must be cold");
        cold_total += cold;
        rows.push((name.clone(), request, report.outcome.ii(), cold));
    }
    let log_bytes = service.persistence_stats().log_bytes;
    drop(service);

    // Pass 2: a fresh process image — replay the log, then serve.
    let service = disk_backed(&dir);
    let replay_started = Instant::now();
    let replayed = service.warm_start();
    let replay_total = replay_started.elapsed();
    assert_eq!(replayed as usize, rows.len(), "every solve was persisted");

    let mut hit_total = Duration::ZERO;
    let mut kernel_rows = Vec::new();
    for (name, request, ii, cold) in &rows {
        let started = Instant::now();
        let (report, d) = service.map(request);
        let hit = started.elapsed();
        assert_eq!(d, CacheDisposition::Hit, "{name}: replay must serve a hit");
        assert_eq!(report.outcome.ii(), *ii, "{name}: replayed II matches");
        hit_total += hit;
        kernel_rows.push(Value::Map(vec![
            ("kernel".to_string(), name.to_value()),
            (
                "ii".to_string(),
                ii.map(|n| n.to_value()).unwrap_or(Value::Null),
            ),
            ("cold_seconds".to_string(), cold.as_secs_f64().to_value()),
            (
                "replayed_hit_seconds".to_string(),
                hit.as_secs_f64().to_value(),
            ),
        ]));
    }
    assert_eq!(
        service.stats().misses,
        0,
        "nothing was re-solved after the replay"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // The restart-path comparison: re-solving the suite vs replaying
    // the log and serving from memory.
    let restart_cost = replay_total + hit_total;
    let speedup = cold_total.as_secs_f64() / restart_cost.as_secs_f64().max(1e-9);
    eprintln!(
        "cold {:.3?} vs replay {:.3?} + hits {:.3?} => {speedup:.0}x",
        cold_total, replay_total, hit_total
    );

    let report = Value::Map(vec![
        ("bench".to_string(), "persistence".to_value()),
        (
            "config".to_string(),
            Value::Map(vec![
                ("grid".to_string(), "4x4".to_value()),
                ("engine".to_string(), "decoupled".to_value()),
                ("mem_capacity".to_string(), MEM_CAPACITY.to_value()),
                ("disk_capacity".to_string(), DISK_CAPACITY.to_value()),
            ]),
        ),
        ("kernels".to_string(), Value::Seq(kernel_rows)),
        (
            "cold_solve_seconds".to_string(),
            cold_total.as_secs_f64().to_value(),
        ),
        (
            "replay_seconds".to_string(),
            replay_total.as_secs_f64().to_value(),
        ),
        (
            "replayed_hit_seconds".to_string(),
            hit_total.as_secs_f64().to_value(),
        ),
        ("log_bytes".to_string(), log_bytes.to_value()),
        ("replayed_entries".to_string(), replayed.to_value()),
        ("restart_speedup_vs_resolve".to_string(), speedup.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("write --out file");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// A fresh scratch directory under the OS temp dir.
fn scratch_dir() -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("monomap-persistence-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
