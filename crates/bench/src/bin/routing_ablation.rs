//! ISSUE-7 routing ablation: mesh-vs-torus II under the k-hop routing
//! model, in stable JSON for committing alongside the code
//! (`BENCH_PR7.json`).
//!
//! Usage:
//!   routing_ablation [--kernels nw,fft] [--out FILE]
//!
//! For every suite kernel the decoupled mapper runs three times on a
//! homogeneous 4×4: torus at `max_route_hops = 1` (the paper's
//! configuration), mesh at `k = 1`, and mesh at `k = 2`. The torus
//! wraps around; the mesh does not, so hub-shaped kernels pay an II
//! penalty under the one-hop model — the ablation measures how much of
//! that mesh-vs-torus gap a two-hop routing model closes.
//!
//! Every successful mapping is validated end-to-end: structural
//! invariants via `Mapping::validate_routed`, then execution on the
//! machine simulator (whose independent BFS refuses over-long routes),
//! compared against the reference interpreter. `machine_ok` is the
//! routing proof proper — the simulator accepted and executed every
//! route; `matches_reference` additionally asserts output/memory
//! equality, which the cgra-sim crate only guarantees for race-free
//! kernels (schedules that reorder racy memory ops across iterations
//! may legitimately diverge). `sim_validated` is the conjunction.
//!
//! IIs are exact search results, so the JSON is deterministic and
//! diffs cleanly; only wall-clock would vary, and none is recorded.

use cgra_arch::{Cgra, Topology};
use cgra_dfg::{suite, Dfg};
use cgra_sim::{interpret, MachineSimulator, SimEnv};
use monomap_core::{DecoupledMapper, MapperConfig, Mapping};
use serde::{Serialize, Value};

/// II cap for every run (generous; kernels that cannot map below it
/// are recorded as `"ii": null`).
const MAX_II: usize = 16;
/// Pipelined iterations executed per simulation check.
const SIM_ITERATIONS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernels: Vec<String> = suite::names().iter().map(|s| s.to_string()).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kernels" => {
                i += 1;
                kernels = args[i].split(',').map(str::to_string).collect();
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let torus = Cgra::new(4, 4).expect("4x4");
    let mesh = Cgra::with_topology(4, 4, Topology::Mesh).expect("4x4");

    let mut rows = Vec::new();
    let mut closed = 0usize;
    for name in &kernels {
        let dfg = suite::generate(name);
        eprintln!("{name}...");
        let torus_k1 = run_case(&torus, &dfg, 1);
        let mesh_k1 = run_case(&mesh, &dfg, 1);
        let mesh_k2 = run_case(&mesh, &dfg, 2);
        if let (Some(a), Some(b)) = (case_ii(&mesh_k1), case_ii(&mesh_k2)) {
            if b < a {
                closed += 1;
                eprintln!("    mesh II {a} -> {b} under k=2");
            }
        }
        rows.push(Value::Map(vec![
            ("kernel".to_string(), name.to_value()),
            ("torus_k1".to_string(), torus_k1),
            ("mesh_k1".to_string(), mesh_k1),
            ("mesh_k2".to_string(), mesh_k2),
        ]));
    }

    let report = Value::Map(vec![
        ("bench".to_string(), "routing_ablation".to_value()),
        (
            "config".to_string(),
            Value::Map(vec![
                ("grid".to_string(), "4x4".to_value()),
                ("max_ii".to_string(), MAX_II.to_value()),
                ("sim_iterations".to_string(), SIM_ITERATIONS.to_value()),
                ("engine".to_string(), "decoupled".to_value()),
            ]),
        ),
        ("kernels".to_string(), Value::Seq(rows)),
        ("mesh_kernels_improved_by_k2".to_string(), closed.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").expect("write --out file");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// The `"ii"` entry of a case rendered by [`run_case`], if mapped.
fn case_ii(case: &Value) -> Option<usize> {
    let Value::Map(entries) = case else {
        return None;
    };
    entries.iter().find_map(|(k, v)| match v {
        Value::Int(n) if k == "ii" => Some(*n as usize),
        Value::UInt(n) if k == "ii" => Some(*n as usize),
        _ => None,
    })
}

/// Maps `dfg` on `cgra` under `max_route_hops` and, on success, checks
/// the mapping end-to-end on the machine simulator.
fn run_case(cgra: &Cgra, dfg: &Dfg, max_route_hops: usize) -> Value {
    let cfg = MapperConfig::new()
        .with_max_ii(MAX_II)
        .with_max_route_hops(max_route_hops);
    match DecoupledMapper::with_config(cgra, cfg).map(dfg) {
        Ok(result) => {
            let max_hops = result
                .mapping
                .route_hops()
                .iter()
                .copied()
                .max()
                .unwrap_or(1);
            let (machine_ok, matches_reference) =
                simulate(cgra, dfg, &result.mapping, max_route_hops);
            Value::Map(vec![
                ("ii".to_string(), result.mapping.ii().to_value()),
                ("longest_route".to_string(), max_hops.to_value()),
                ("machine_ok".to_string(), machine_ok.to_value()),
                (
                    "matches_reference".to_string(),
                    matches_reference.to_value(),
                ),
                (
                    "sim_validated".to_string(),
                    (machine_ok && matches_reference).to_value(),
                ),
            ])
        }
        Err(e) => Value::Map(vec![
            ("ii".to_string(), Value::Null),
            ("error".to_string(), format!("{e:?}").to_value()),
        ]),
    }
}

/// Structural validation plus machine-vs-interpreter execution:
/// `(machine accepted and executed every route, outputs and memory
/// match the reference interpreter)`.
fn simulate(cgra: &Cgra, dfg: &Dfg, mapping: &Mapping, max_route_hops: usize) -> (bool, bool) {
    if mapping.validate_routed(dfg, cgra, max_route_hops).is_err() {
        return (false, false);
    }
    // Generic inputs: enough channels for every suite kernel (missing
    // channels read as zero, identically for both executors).
    let env = SimEnv::new(256)
        .with_input_stream(vec![3, 7, 11, 15])
        .with_input_stream(vec![2, 4, 6, 8])
        .with_input_stream(vec![1, 5, 9, 13])
        .with_input_stream(vec![6, 2, 8, 4]);
    let Ok(machine) = MachineSimulator::new(cgra, dfg, mapping)
        .with_max_route_hops(max_route_hops)
        .run(&env, SIM_ITERATIONS)
    else {
        return (false, false);
    };
    let Ok(reference) = interpret(dfg, &env, SIM_ITERATIONS) else {
        return (true, false);
    };
    (
        true,
        reference.outputs == machine.outputs && reference.memory == machine.memory,
    )
}
