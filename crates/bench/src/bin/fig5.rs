//! Regenerates the paper's Fig. 5: compilation time (seconds, log
//! scale in the paper) vs CGRA size for the `aes` benchmark, decoupled
//! mapper vs SAT-MapIt baseline.
//!
//! Usage: fig5 [--timeout SECS] [--sizes 2,5,10,20] [--bench NAME]

use std::time::Duration;

use cgra_dfg::suite;
use monomap_bench::{report, run_cell, CellResult, MapperKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<usize> = vec![2, 5, 10, 20];
    let mut timeout = 8.0f64;
    let mut bench = String::from("aes");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                timeout = args[i].parse().expect("--timeout SECS");
            }
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes a,b,c"))
                    .collect();
            }
            "--bench" => {
                i += 1;
                bench = args[i].clone();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let dfg = suite::generate(&bench);
    let mut cells: Vec<CellResult> = Vec::new();
    for &size in &sizes {
        for kind in [MapperKind::Monomorphism, MapperKind::SatMapIt] {
            eprintln!("running {bench} {size}x{size} {kind:?}...");
            cells.push(run_cell(&dfg, size, kind, Duration::from_secs_f64(timeout)));
        }
    }

    println!("# Fig. 5 — compilation time vs CGRA size, benchmark {bench}");
    print!("{}", report::render_fig5_csv(&cells));

    // ASCII sketch of the two series (log10 seconds).
    println!("\n# sketch (each column one size; M = monomorphism, S = sat-mapit, ! = timeout)");
    for kind in [MapperKind::Monomorphism, MapperKind::SatMapIt] {
        let tag = match kind {
            MapperKind::Monomorphism => 'M',
            _ => 'S',
        };
        let series: Vec<String> = cells
            .iter()
            .filter(|c| c.mapper == kind)
            .map(|c| {
                if c.timed_out() {
                    format!("{}x{}:{tag}=!", c.size, c.size)
                } else {
                    format!("{}x{}:{tag}={:.2}s", c.size, c.size, c.total_seconds)
                }
            })
            .collect();
        println!("{}", series.join("  "));
    }

    let _ = std::fs::create_dir_all("results");
    let csv = report::render_fig5_csv(&cells);
    if std::fs::write("results/fig5.csv", csv).is_ok() {
        eprintln!("wrote results/fig5.csv");
    }
}
