//! Captures the k=1 golden mapping battery for the routing-parity
//! tests: every suite kernel through all three engines on the
//! homogeneous and the heterogeneous 4×4, serialized one case per
//! line as stable tab-separated records.
//!
//! Usage:
//!   routing_goldens [--out FILE]
//!
//! Line format (no tabs or newlines occur inside any field):
//!
//! ```text
//! engine \t grid \t kernel \t OK  \t <mapping JSON>
//! engine \t grid \t kernel \t ERR \t <MapError debug>
//! ```
//!
//! The captured file is committed as `tests/golden/routing_parity.tsv`
//! and asserted byte-identical by `tests/routing_parity.rs`: the
//! routing-aware space phase at its default `max_route_hops = 1` must
//! reproduce the pre-change serial mappings bit for bit, for the
//! decoupled, coupled and annealing engines alike.

use cgra_arch::{CapabilityProfile, Cgra};
use cgra_dfg::suite;
use monomap_bench::routing_golden_lines;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let hom = Cgra::new(4, 4).expect("4x4");
    let het = Cgra::new(4, 4)
        .expect("4x4")
        .with_capability_profile(CapabilityProfile::MemLeftMulCheckerboard);

    let mut lines = Vec::new();
    for name in suite::names() {
        eprintln!("{name}...");
        lines.extend(routing_golden_lines(&hom, "hom4", name));
        lines.extend(routing_golden_lines(&het, "het4", name));
    }
    let body = lines.join("\n") + "\n";
    match out {
        Some(path) => {
            std::fs::write(&path, body).expect("write --out file");
            eprintln!("wrote {path}");
        }
        None => print!("{body}"),
    }
}
