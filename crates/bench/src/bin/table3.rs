//! Regenerates the paper's Table III: II and compilation time for the
//! 17-kernel suite on 2×2, 5×5, 10×10 and 20×20 CGRAs, decoupled
//! monomorphism mapper vs the SAT-MapIt-style coupled baseline.
//!
//! Usage:
//!   table3 [--quick] [--timeout SECS] [--sizes 2,5,10,20] [--out DIR]
//!
//! `--quick` restricts to 2×2 and 5×5 with a short timeout (CI-sized).
//! Absolute times are machine-dependent; the paper's *shape* — flat
//! decoupled times, steeply growing coupled times, matching IIs — is
//! what this reproduces.

use std::time::Duration;

use cgra_dfg::suite;
use monomap_bench as bench_lib;
use monomap_bench::{run_cell, CellResult, MapperKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<usize> = vec![2, 5, 10, 20];
    let mut timeout = 8.0f64;
    let mut out_dir = String::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                sizes = vec![2, 5];
                timeout = 4.0;
            }
            "--timeout" => {
                i += 1;
                timeout = args[i].parse().expect("--timeout SECS");
            }
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes a,b,c"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_dir = args[i].clone();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let dfgs = suite::generate_all();
    let mut cells: Vec<CellResult> = Vec::new();
    for &size in &sizes {
        for dfg in &dfgs {
            for kind in [MapperKind::Monomorphism, MapperKind::SatMapIt] {
                eprintln!("running {:>14} {}x{} {:?}...", dfg.name(), size, size, kind);
                let cell = run_cell(dfg, size, kind, Duration::from_secs_f64(timeout));
                eprintln!("    -> {:?} in {:.2}s", cell.outcome, cell.total_seconds);
                cells.push(cell);
            }
        }
    }

    for &size in &sizes {
        println!(
            "{}",
            bench_lib::report::render_size_table(size, &cells, timeout)
        );
    }

    // Paper-style headline: average speedup per size (CTR mean over
    // rows where both tools finished).
    println!("=== headline: average compile-time ratio (SAT-MapIt / monomorphism) ===");
    for &size in &sizes {
        let rows: Vec<(f64, f64)> = dfgs
            .iter()
            .filter_map(|dfg| {
                let m = cells.iter().find(|c| {
                    c.size == size
                        && c.benchmark == dfg.name()
                        && c.mapper == MapperKind::Monomorphism
                })?;
                let s = cells.iter().find(|c| {
                    c.size == size && c.benchmark == dfg.name() && c.mapper == MapperKind::SatMapIt
                })?;
                if m.timed_out() || s.timed_out() {
                    None
                } else {
                    Some((m.total_seconds, s.total_seconds))
                }
            })
            .collect();
        if rows.is_empty() {
            println!("{size:>3}x{size:<3}: no rows where both mappers finished");
            continue;
        }
        let avg_ctr: f64 =
            rows.iter().map(|(m, s)| s / m.max(1e-9)).sum::<f64>() / rows.len() as f64;
        println!(
            "{size:>3}x{size:<3}: {avg_ctr:>10.2}x over {} benchmarks",
            rows.len()
        );
    }

    // II agreement summary (the paper's quality claim).
    let mut same = 0;
    let mut differ = 0;
    let mut mono_only = 0;
    let mut sat_only = 0;
    for &size in &sizes {
        for dfg in &dfgs {
            let m = cells
                .iter()
                .find(|c| {
                    c.size == size
                        && c.benchmark == dfg.name()
                        && c.mapper == MapperKind::Monomorphism
                })
                .and_then(|c| c.ii());
            let s = cells
                .iter()
                .find(|c| {
                    c.size == size && c.benchmark == dfg.name() && c.mapper == MapperKind::SatMapIt
                })
                .and_then(|c| c.ii());
            match (m, s) {
                (Some(a), Some(b)) if a == b => same += 1,
                (Some(_), Some(_)) => differ += 1,
                (Some(_), None) => mono_only += 1,
                (None, Some(_)) => sat_only += 1,
                (None, None) => {}
            }
        }
    }
    println!("\n=== II quality (cells where both / one mapper finished) ===");
    println!("same II: {same}   different II: {differ}   only monomorphism finished: {mono_only}   only sat-mapit finished: {sat_only}");

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return;
    }
    let json = serde_json::to_string_pretty(&cells).expect("serialisable results");
    let path = format!("{out_dir}/table3.json");
    if std::fs::write(&path, json).is_ok() {
        eprintln!("wrote {path}");
    }
}
