//! # cgra-smt — a finite-domain constraint layer over CDCL SAT
//!
//! The paper formulates the time dimension of CGRA mapping as an SMT
//! problem and hands it to Z3. The formulation is quantifier-free and
//! every variable ranges over a small bounded set of schedule slots, so
//! the theory involved is finite-domain integer arithmetic. This crate
//! provides exactly that fragment as a thin, complete encoding onto the
//! [`cgra_sat`] CDCL core:
//!
//! * integer variables with explicit finite domains (one-hot encoded,
//!   with a linear at-most-one ladder for large domains),
//! * reified domain literals `[x = v]`,
//! * arbitrary binary relations between integer variables (encoded by
//!   forbidding violating value pairs),
//! * cardinality constraints `≤ k` / `≥ k` / `= k` via the Sinz
//!   sequential-counter encoding,
//! * Tseitin `or`/`and` definition literals,
//! * model extraction and solution enumeration through blocking clauses.
//!
//! ## Example
//!
//! ```
//! use cgra_smt::{FdSolver, FdResult};
//!
//! let mut fd = FdSolver::new();
//! let x = fd.new_int(0..=3);
//! let y = fd.new_int(0..=3);
//! // y must be strictly greater than x
//! fd.require_binary(x, y, |a, b| b > a);
//! // and x must be at least 2
//! fd.require_unary(x, |a| a >= 2);
//! assert_eq!(fd.solve(), FdResult::Sat);
//! assert_eq!(fd.value(x), 2);
//! assert_eq!(fd.value(y), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cardinality;
mod fd;

pub use cardinality::{at_least_k, at_most_k, at_most_one, exactly_k};
pub use cgra_sat::{Budget, LBool, Lit, SatResult as FdResult, Var};
pub use fd::{FdSolver, FdStats, IntVar};
