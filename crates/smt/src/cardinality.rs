//! Cardinality constraint encodings.
//!
//! The Sinz sequential-counter encoding is used throughout: it is
//! linear in `n · k`, arc-consistent under unit propagation, and simple
//! to verify. For the CGRA time formulation the bounds are tiny (`k` is
//! the PE count per slot or the connectivity degree), so no stronger
//! encoding is warranted.

use cgra_sat::{Lit, Solver};

/// Adds clauses enforcing that at most `k` of `lits` are true.
///
/// Uses the sequential-counter (Sinz 2005) encoding with fresh auxiliary
/// registers. `k == 0` forbids every literal; `k >= lits.len()` adds
/// nothing.
pub fn at_most_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k >= n {
        return;
    }
    if k == 0 {
        for &l in lits {
            solver.add_clause([!l]);
        }
        return;
    }
    // registers[i][j] == true  =>  at least j+1 of lits[..=i] are true.
    let mut prev: Vec<Lit> = Vec::with_capacity(k);
    for (i, &x) in lits.iter().enumerate() {
        if i == n - 1 {
            // Only the overflow clause matters for the last literal.
            if let Some(&r_top) = prev.get(k - 1) {
                solver.add_clause([!x, !r_top]);
            }
            break;
        }
        let row: Vec<Lit> = (0..k).map(|_| solver.new_var().pos()).collect();
        // x_i -> R_i,1
        solver.add_clause([!x, row[0]]);
        if i > 0 {
            for j in 0..k {
                // R_{i-1},j -> R_i,j
                solver.add_clause([!prev[j], row[j]]);
            }
            for j in 1..k {
                // x_i ∧ R_{i-1},j -> R_i,j+1
                solver.add_clause([!x, !prev[j - 1], row[j]]);
            }
            // overflow: x_i ∧ R_{i-1},k is forbidden
            solver.add_clause([!x, !prev[k - 1]]);
        }
        prev = row;
    }
}

/// Adds clauses enforcing that at least `k` of `lits` are true.
///
/// Encoded as "at most `n - k` of the negations are true". `k == 0` adds
/// nothing; `k > lits.len()` makes the formula unsatisfiable.
pub fn at_least_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k == 0 {
        return;
    }
    if k > n {
        solver.add_clause([]);
        return;
    }
    if k == 1 {
        solver.add_clause(lits.iter().copied());
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    at_most_k(solver, &negated, n - k);
}

/// Adds clauses enforcing that exactly `k` of `lits` are true.
pub fn exactly_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    at_most_k(solver, lits, k);
    at_least_k(solver, lits, k);
}

/// Adds an at-most-one constraint, choosing pairwise clauses for small
/// inputs and the sequential ladder otherwise.
pub fn at_most_one(solver: &mut Solver, lits: &[Lit]) {
    if lits.len() <= 6 {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                solver.add_clause([!lits[i], !lits[j]]);
            }
        }
    } else {
        at_most_k(solver, lits, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_sat::{SatResult, Solver, Var};

    /// Enumerates all models over `vars` and returns the set of
    /// true-counts observed.
    fn true_counts(solver: &mut Solver, vars: &[Var]) -> Vec<usize> {
        let mut counts = std::collections::BTreeSet::new();
        let mut models = 0;
        while solver.solve() == SatResult::Sat {
            models += 1;
            assert!(models <= 4096, "runaway enumeration");
            let count = vars.iter().filter(|v| solver.value(**v).is_true()).count();
            counts.insert(count);
            let block: Vec<_> = vars
                .iter()
                .map(|&v| {
                    if solver.value(v).is_true() {
                        v.neg()
                    } else {
                        v.pos()
                    }
                })
                .collect();
            solver.add_clause(block);
        }
        counts.into_iter().collect()
    }

    fn fresh(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        (s, vars)
    }

    #[test]
    fn at_most_k_exhaustive() {
        for n in 1..=6usize {
            for k in 0..=n {
                let (mut s, vars) = fresh(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
                at_most_k(&mut s, &lits, k);
                let counts = true_counts(&mut s, &vars);
                assert!(
                    counts.iter().all(|&c| c <= k),
                    "n={n} k={k} counts={counts:?}"
                );
                // Every count up to k must be achievable.
                for c in 0..=k {
                    assert!(counts.contains(&c), "n={n} k={k} missing count {c}");
                }
            }
        }
    }

    #[test]
    fn at_least_k_exhaustive() {
        for n in 1..=6usize {
            for k in 0..=n {
                let (mut s, vars) = fresh(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
                at_least_k(&mut s, &lits, k);
                let counts = true_counts(&mut s, &vars);
                assert!(counts.iter().all(|&c| c >= k), "n={n} k={k}");
                for c in k..=n {
                    assert!(counts.contains(&c), "n={n} k={k} missing count {c}");
                }
            }
        }
    }

    #[test]
    fn exactly_k_exhaustive() {
        for n in 1..=5usize {
            for k in 0..=n {
                let (mut s, vars) = fresh(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
                exactly_k(&mut s, &lits, k);
                let counts = true_counts(&mut s, &vars);
                assert_eq!(counts, vec![k], "n={n} k={k}");
            }
        }
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let (mut s, vars) = fresh(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
        at_least_k(&mut s, &lits, 4);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn at_most_one_both_encodings() {
        for n in [3usize, 12] {
            let (mut s, vars) = fresh(n);
            let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
            at_most_one(&mut s, &lits);
            // Two simultaneous trues must be refuted.
            let r = s.solve_with_assumptions(&[lits[0], lits[n - 1]]);
            assert_eq!(r, SatResult::Unsat, "n={n}");
            // One true is fine.
            let r = s.solve_with_assumptions(&[lits[0]]);
            assert_eq!(r, SatResult::Sat, "n={n}");
        }
    }

    #[test]
    fn propagation_strength_amk() {
        // Once k literals are true, unit propagation alone should force
        // the remaining literals false (arc consistency of the ladder).
        let (mut s, vars) = fresh(5);
        let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
        at_most_k(&mut s, &lits, 2);
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], lits[2]]),
            SatResult::Sat
        );
        assert!(s.lit_value(lits[1]).is_false());
        assert!(s.lit_value(lits[3]).is_false());
        assert!(s.lit_value(lits[4]).is_false());
    }
}
