//! Finite-domain integer variables and constraints over the SAT core.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cgra_sat::{Budget, Lit, SatResult, Solver};

use crate::cardinality;

/// Handle to a finite-domain integer variable inside an [`FdSolver`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntVar(u32);

impl IntVar {
    /// Dense index of this variable inside its solver.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

struct IntVarData {
    domain: Vec<i64>,
    lits: Vec<Lit>,
}

/// Sizes of the encoded formula, for reporting and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FdStats {
    /// Number of finite-domain integer variables.
    pub int_vars: usize,
    /// Number of SAT variables allocated (indicators + auxiliaries).
    pub sat_vars: usize,
    /// Number of clauses alive in the SAT core.
    pub clauses: usize,
}

/// A finite-domain constraint solver ("mini-SMT") encoding onto CDCL SAT.
///
/// See the crate-level documentation for an example. All constraint
/// methods add clauses immediately (eager encoding); the solver can then
/// be queried repeatedly and incrementally.
pub struct FdSolver {
    sat: Solver,
    vars: Vec<IntVarData>,
}

impl fmt::Debug for FdSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FdSolver")
            .field("int_vars", &self.vars.len())
            .field("sat", &self.sat)
            .finish()
    }
}

impl Default for FdSolver {
    fn default() -> Self {
        FdSolver::new()
    }
}

impl FdSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        FdSolver {
            sat: Solver::new(),
            vars: Vec::new(),
        }
    }

    /// Creates an integer variable over the given domain values.
    ///
    /// Duplicate values are merged; the domain is sorted. An exactly-one
    /// constraint over the indicator literals is added immediately.
    ///
    /// # Panics
    ///
    /// Panics if the domain is empty.
    pub fn new_int<I>(&mut self, domain: I) -> IntVar
    where
        I: IntoIterator<Item = i64>,
    {
        let mut values: Vec<i64> = domain.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        assert!(
            !values.is_empty(),
            "integer variable needs a non-empty domain"
        );
        let lits: Vec<Lit> = values.iter().map(|_| self.sat.new_var().pos()).collect();
        self.sat.add_clause(lits.iter().copied());
        cardinality::at_most_one(&mut self.sat, &lits);
        let v = IntVar(self.vars.len() as u32);
        self.vars.push(IntVarData {
            domain: values,
            lits,
        });
        v
    }

    /// Creates a fresh free Boolean literal.
    pub fn new_bool(&mut self) -> Lit {
        self.sat.new_var().pos()
    }

    /// The sorted domain of a variable.
    pub fn domain(&self, v: IntVar) -> &[i64] {
        &self.vars[v.index()].domain
    }

    /// The indicator literal for `v == value`, if `value` is in the
    /// domain.
    pub fn eq_lit(&self, v: IntVar, value: i64) -> Option<Lit> {
        let data = &self.vars[v.index()];
        data.domain.binary_search(&value).ok().map(|i| data.lits[i])
    }

    /// Indicator literals of `v` paired with their domain values.
    pub fn indicator_lits(&self, v: IntVar) -> impl Iterator<Item = (i64, Lit)> + '_ {
        let data = &self.vars[v.index()];
        data.domain.iter().copied().zip(data.lits.iter().copied())
    }

    /// Adds a raw clause over Boolean literals.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.sat.add_clause(lits);
    }

    /// Restricts `v` to domain values satisfying `pred`.
    pub fn require_unary<F>(&mut self, v: IntVar, pred: F)
    where
        F: Fn(i64) -> bool,
    {
        let to_forbid: Vec<Lit> = self.vars[v.index()]
            .domain
            .iter()
            .zip(&self.vars[v.index()].lits)
            .filter(|(val, _)| !pred(**val))
            .map(|(_, l)| *l)
            .collect();
        for l in to_forbid {
            self.sat.add_clause([!l]);
        }
    }

    /// Requires the relation `pred(a, b)` to hold between the values of
    /// `a` and `b`, by forbidding every violating value pair.
    ///
    /// Complexity is `|dom(a)| · |dom(b)|` binary clauses in the worst
    /// case — intended for the small schedule-window domains of the CGRA
    /// time formulation.
    pub fn require_binary<F>(&mut self, a: IntVar, b: IntVar, pred: F)
    where
        F: Fn(i64, i64) -> bool,
    {
        let mut forbidden = Vec::new();
        {
            let da = &self.vars[a.index()];
            let db = &self.vars[b.index()];
            for (ia, &va) in da.domain.iter().enumerate() {
                for (ib, &vb) in db.domain.iter().enumerate() {
                    if !pred(va, vb) {
                        forbidden.push((da.lits[ia], db.lits[ib]));
                    }
                }
            }
        }
        for (la, lb) in forbidden {
            self.sat.add_clause([!la, !lb]);
        }
    }

    /// Requires `pred(a, b)` to hold whenever `guard` is true.
    pub fn require_binary_if<F>(&mut self, guard: Lit, a: IntVar, b: IntVar, pred: F)
    where
        F: Fn(i64, i64) -> bool,
    {
        let mut forbidden = Vec::new();
        {
            let da = &self.vars[a.index()];
            let db = &self.vars[b.index()];
            for (ia, &va) in da.domain.iter().enumerate() {
                for (ib, &vb) in db.domain.iter().enumerate() {
                    if !pred(va, vb) {
                        forbidden.push((da.lits[ia], db.lits[ib]));
                    }
                }
            }
        }
        for (la, lb) in forbidden {
            self.sat.add_clause([!guard, !la, !lb]);
        }
    }

    /// Returns a literal defined (via Tseitin) to be the disjunction of
    /// `lits`.
    pub fn or_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let y = self.sat.new_var().pos();
        for &l in lits {
            self.sat.add_clause([!l, y]);
        }
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(!y);
        long.extend_from_slice(lits);
        self.sat.add_clause(long);
        y
    }

    /// Returns a literal defined (via Tseitin) to be the conjunction of
    /// `lits`.
    pub fn and_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let y = self.sat.new_var().pos();
        for &l in lits {
            self.sat.add_clause([!y, l]);
        }
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(y);
        long.extend(lits.iter().map(|&l| !l));
        self.sat.add_clause(long);
        y
    }

    /// At most `k` of `lits` may be true.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::at_most_k(&mut self.sat, lits, k);
    }

    /// At least `k` of `lits` must be true.
    pub fn at_least_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::at_least_k(&mut self.sat, lits, k);
    }

    /// Exactly `k` of `lits` must be true.
    pub fn exactly_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::exactly_k(&mut self.sat, lits, k);
    }

    /// Decides the accumulated constraints.
    pub fn solve(&mut self) -> SatResult {
        self.sat.solve()
    }

    /// Decides under a resource budget; returns
    /// [`SatResult::Unknown`](cgra_sat::SatResult::Unknown) when exhausted.
    pub fn solve_limited(&mut self, budget: &Budget) -> SatResult {
        self.sat.solve_limited(&[], budget)
    }

    /// Decides under assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.sat.solve_with_assumptions(assumptions)
    }

    /// Installs a cooperative cancellation flag (see
    /// [`cgra_sat::Solver::set_cancel_flag`]).
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.sat.set_cancel_flag(flag);
    }

    /// The value of `v` in the current model.
    ///
    /// # Panics
    ///
    /// Panics if the last `solve` did not return Sat, or if the model is
    /// no longer current (e.g. clauses were added since).
    pub fn value(&self, v: IntVar) -> i64 {
        let data = &self.vars[v.index()];
        for (i, &l) in data.lits.iter().enumerate() {
            if self.sat.lit_value(l).is_true() {
                return data.domain[i];
            }
        }
        panic!("no model value for {v:?}: call solve() first");
    }

    /// The truth value of a Boolean literal in the current model.
    pub fn bool_value(&self, l: Lit) -> bool {
        self.sat.lit_value(l).is_true()
    }

    /// Adds a blocking clause excluding the current assignment of `vars`,
    /// enabling solution enumeration over that projection.
    ///
    /// Must be called while a model is current; reads the model before
    /// modifying the clause database.
    pub fn block_current(&mut self, vars: &[IntVar]) {
        let clause: Vec<Lit> = vars
            .iter()
            .map(|&v| {
                let val = self.value(v);
                !self.eq_lit(v, val).expect("model value is in the domain")
            })
            .collect();
        self.sat.add_clause(clause);
    }

    /// Sizes of the current encoding.
    pub fn stats(&self) -> FdStats {
        FdStats {
            int_vars: self.vars.len(),
            sat_vars: self.sat.num_vars(),
            clauses: self.sat.num_clauses(),
        }
    }

    /// Borrows the underlying SAT solver (for advanced encodings).
    pub fn sat_mut(&mut self) -> &mut Solver {
        &mut self.sat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_domain() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([7]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_eq!(fd.value(x), 7);
    }

    #[test]
    fn domains_are_sorted_and_deduped() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([3, 1, 2, 3, 1]);
        assert_eq!(fd.domain(x), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_panics() {
        let mut fd = FdSolver::new();
        let _ = fd.new_int([]);
    }

    #[test]
    fn unary_constraint_prunes() {
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..10);
        fd.require_unary(x, |v| v % 2 == 0 && v > 5);
        assert_eq!(fd.solve(), SatResult::Sat);
        let v = fd.value(x);
        assert!(v % 2 == 0 && v > 5);
    }

    #[test]
    fn unsat_unary() {
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..5);
        fd.require_unary(x, |v| v > 10);
        assert_eq!(fd.solve(), SatResult::Unsat);
    }

    #[test]
    fn binary_ordering_chain() {
        // x0 < x1 < x2 < x3 over 0..4 forces the identity assignment.
        let mut fd = FdSolver::new();
        let xs: Vec<IntVar> = (0..4).map(|_| fd.new_int(0..4)).collect();
        for w in xs.windows(2) {
            fd.require_binary(w[0], w[1], |a, b| a < b);
        }
        assert_eq!(fd.solve(), FdResultAlias::Sat);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(fd.value(x), i as i64);
        }
    }

    // Local alias to exercise the public re-export path.
    use cgra_sat::SatResult as FdResultAlias;

    #[test]
    fn guarded_binary_constraint() {
        let mut fd = FdSolver::new();
        let g = fd.new_bool();
        let x = fd.new_int(0..3);
        let y = fd.new_int(0..3);
        fd.require_binary_if(g, x, y, |a, b| a == b);
        fd.require_binary(x, y, |a, b| a != b || a == 2);
        // With the guard on, x == y == 2 is the only option.
        fd.add_clause([g]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_eq!(fd.value(x), 2);
        assert_eq!(fd.value(y), 2);
    }

    #[test]
    fn enumeration_counts_solutions() {
        // x + y == 3 over 0..=3 has exactly 4 solutions.
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..=3);
        let y = fd.new_int(0..=3);
        fd.require_binary(x, y, |a, b| a + b == 3);
        let mut n = 0;
        while fd.solve() == SatResult::Sat {
            n += 1;
            assert!(n <= 4, "too many solutions");
            fd.block_current(&[x, y]);
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn or_and_lits() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([0, 1]);
        let y = fd.new_int([0, 1]);
        let x1 = fd.eq_lit(x, 1).unwrap();
        let y1 = fd.eq_lit(y, 1).unwrap();
        let both = fd.and_lit(&[x1, y1]);
        let either = fd.or_lit(&[x1, y1]);
        fd.add_clause([either]);
        fd.add_clause([!both]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_ne!(fd.value(x), fd.value(y));
    }

    #[test]
    fn cardinality_over_indicators() {
        // Five variables over 0..3; at most 2 may take the value 0.
        let mut fd = FdSolver::new();
        let xs: Vec<IntVar> = (0..5).map(|_| fd.new_int(0..3)).collect();
        let zeros: Vec<Lit> = xs.iter().map(|&x| fd.eq_lit(x, 0).unwrap()).collect();
        fd.at_most_k(&zeros, 2);
        // Force three of them to 0 => unsat.
        for &x in xs.iter().take(3) {
            fd.require_unary(x, |v| v == 0);
        }
        assert_eq!(fd.solve(), SatResult::Unsat);
    }

    #[test]
    fn eq_lit_for_out_of_domain_value() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([1, 3, 5]);
        assert!(fd.eq_lit(x, 2).is_none());
        assert!(fd.eq_lit(x, 3).is_some());
    }

    #[test]
    fn stats_report_sizes() {
        let mut fd = FdSolver::new();
        let _ = fd.new_int(0..8);
        let s = fd.stats();
        assert_eq!(s.int_vars, 1);
        assert!(s.sat_vars >= 8);
        assert!(s.clauses > 0);
    }
}
