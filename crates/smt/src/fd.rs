//! Finite-domain integer variables and constraints over the SAT core.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cgra_sat::{Budget, Lit, SatResult, Solver};

use crate::cardinality;

/// Handle to a finite-domain integer variable inside an [`FdSolver`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntVar(u32);

impl IntVar {
    /// Dense index of this variable inside its solver.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

struct IntVarData {
    domain: Vec<i64>,
    lits: Vec<Lit>,
}

/// Sizes of the encoded formula, for reporting and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FdStats {
    /// Number of finite-domain integer variables.
    pub int_vars: usize,
    /// Number of SAT variables allocated (indicators + auxiliaries).
    pub sat_vars: usize,
    /// Number of clauses alive in the SAT core.
    pub clauses: usize,
}

/// A finite-domain constraint solver ("mini-SMT") encoding onto CDCL SAT.
///
/// See the crate-level documentation for an example. All constraint
/// methods add clauses immediately (eager encoding); the solver can then
/// be queried repeatedly and incrementally.
pub struct FdSolver {
    sat: Solver,
    vars: Vec<IntVarData>,
}

impl fmt::Debug for FdSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FdSolver")
            .field("int_vars", &self.vars.len())
            .field("sat", &self.sat)
            .finish()
    }
}

impl Default for FdSolver {
    fn default() -> Self {
        FdSolver::new()
    }
}

impl FdSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        FdSolver {
            sat: Solver::new(),
            vars: Vec::new(),
        }
    }

    /// Creates an integer variable over the given domain values.
    ///
    /// Duplicate values are merged; the domain is sorted. An exactly-one
    /// constraint over the indicator literals is added immediately.
    ///
    /// # Panics
    ///
    /// Panics if the domain is empty.
    pub fn new_int<I>(&mut self, domain: I) -> IntVar
    where
        I: IntoIterator<Item = i64>,
    {
        let mut values: Vec<i64> = domain.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        assert!(
            !values.is_empty(),
            "integer variable needs a non-empty domain"
        );
        let lits: Vec<Lit> = values.iter().map(|_| self.sat.new_var().pos()).collect();
        self.sat.add_clause(lits.iter().copied());
        cardinality::at_most_one(&mut self.sat, &lits);
        let v = IntVar(self.vars.len() as u32);
        self.vars.push(IntVarData {
            domain: values,
            lits,
        });
        v
    }

    /// Creates an integer variable whose at-least-one constraint is
    /// conditioned on `guard`.
    ///
    /// Like [`FdSolver::new_int`], except that the "some value must be
    /// taken" clause becomes `guard → (l₀ ∨ l₁ ∨ …)`; the at-most-one
    /// side stays unconditional (holding vacuously when no value is
    /// taken). Solving with `guard` assumed reproduces the plain
    /// `new_int` semantics, while leaving `guard` free keeps the
    /// variable optional — the hook on which [`FdSolver::extend_int`]
    /// builds incremental domain widening.
    ///
    /// # Panics
    ///
    /// Panics if the domain is empty.
    pub fn new_int_guarded<I>(&mut self, domain: I, guard: Lit) -> IntVar
    where
        I: IntoIterator<Item = i64>,
    {
        let mut values: Vec<i64> = domain.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        assert!(
            !values.is_empty(),
            "integer variable needs a non-empty domain"
        );
        let lits: Vec<Lit> = values.iter().map(|_| self.sat.new_var().pos()).collect();
        let mut alo = Vec::with_capacity(lits.len() + 1);
        alo.push(!guard);
        alo.extend_from_slice(&lits);
        self.sat.add_clause(alo);
        cardinality::at_most_one(&mut self.sat, &lits);
        let v = IntVar(self.vars.len() as u32);
        self.vars.push(IntVarData {
            domain: values,
            lits,
        });
        v
    }

    /// Widens the domain of `v` with values strictly above its current
    /// maximum, re-guarding the at-least-one constraint on `guard`.
    ///
    /// This is the monotone widening step of incremental solving: the
    /// new values get fresh indicator literals, pairwise at-most-one
    /// clauses against every existing indicator keep the exactly-one
    /// invariant, and a new clause `guard → (all indicators)` covers the
    /// grown domain. The previous guard (from [`FdSolver::new_int_guarded`]
    /// or an earlier `extend_int`) should be permanently negated by the
    /// caller once it stops being assumed — its at-least-one clause is
    /// then vacuously satisfied and the new one takes over. Nothing is
    /// removed or rebuilt, so learnt clauses in the SAT core stay valid.
    ///
    /// Returns the number of values actually added (duplicates of
    /// existing values are not permitted — see Panics).
    ///
    /// # Panics
    ///
    /// Panics if any new value is not strictly greater than the current
    /// domain maximum (widening must be append-only so existing
    /// indicator indices stay stable).
    pub fn extend_int<I>(&mut self, v: IntVar, new_values: I, guard: Lit) -> usize
    where
        I: IntoIterator<Item = i64>,
    {
        let mut values: Vec<i64> = new_values.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        let current_max = *self.vars[v.index()]
            .domain
            .last()
            .expect("domains are never empty");
        assert!(
            values.first().is_none_or(|&first| first > current_max),
            "extend_int must append values strictly above the current maximum"
        );
        let added = values.len();
        let new_lits: Vec<Lit> = values.iter().map(|_| self.sat.new_var().pos()).collect();
        // At-most-one across the grown domain: the old encoding already
        // covers old×old pairs, so only pairs touching a new literal are
        // missing.
        for (i, &nl) in new_lits.iter().enumerate() {
            for &ol in &self.vars[v.index()].lits {
                self.sat.add_clause([!ol, !nl]);
            }
            for &nl2 in &new_lits[i + 1..] {
                self.sat.add_clause([!nl, !nl2]);
            }
        }
        let data = &mut self.vars[v.index()];
        data.domain.extend_from_slice(&values);
        data.lits.extend_from_slice(&new_lits);
        let mut alo = Vec::with_capacity(data.lits.len() + 1);
        alo.push(!guard);
        alo.extend_from_slice(&data.lits);
        self.sat.add_clause(alo);
        added
    }

    /// Like [`FdSolver::require_binary`], but only over value pairs that
    /// involve a domain index of `a` at or beyond `from_a`, or of `b` at
    /// or beyond `from_b`.
    ///
    /// After [`FdSolver::extend_int`] grows a domain, passing the
    /// pre-extension lengths here adds exactly the clauses the original
    /// `require_binary` call would now emit on top of what it already
    /// did — the incremental delta.
    pub fn require_binary_from<F>(
        &mut self,
        a: IntVar,
        b: IntVar,
        from_a: usize,
        from_b: usize,
        pred: F,
    ) where
        F: Fn(i64, i64) -> bool,
    {
        let mut forbidden = Vec::new();
        {
            let da = &self.vars[a.index()];
            let db = &self.vars[b.index()];
            for (ia, &va) in da.domain.iter().enumerate() {
                for (ib, &vb) in db.domain.iter().enumerate() {
                    if (ia >= from_a || ib >= from_b) && !pred(va, vb) {
                        forbidden.push((da.lits[ia], db.lits[ib]));
                    }
                }
            }
        }
        for (la, lb) in forbidden {
            self.sat.add_clause([!la, !lb]);
        }
    }

    /// Creates a fresh free Boolean literal.
    pub fn new_bool(&mut self) -> Lit {
        self.sat.new_var().pos()
    }

    /// The sorted domain of a variable.
    pub fn domain(&self, v: IntVar) -> &[i64] {
        &self.vars[v.index()].domain
    }

    /// The indicator literal for `v == value`, if `value` is in the
    /// domain.
    pub fn eq_lit(&self, v: IntVar, value: i64) -> Option<Lit> {
        let data = &self.vars[v.index()];
        data.domain.binary_search(&value).ok().map(|i| data.lits[i])
    }

    /// Indicator literals of `v` paired with their domain values.
    pub fn indicator_lits(&self, v: IntVar) -> impl Iterator<Item = (i64, Lit)> + '_ {
        let data = &self.vars[v.index()];
        data.domain.iter().copied().zip(data.lits.iter().copied())
    }

    /// Adds a raw clause over Boolean literals.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.sat.add_clause(lits);
    }

    /// Restricts `v` to domain values satisfying `pred`.
    pub fn require_unary<F>(&mut self, v: IntVar, pred: F)
    where
        F: Fn(i64) -> bool,
    {
        let to_forbid: Vec<Lit> = self.vars[v.index()]
            .domain
            .iter()
            .zip(&self.vars[v.index()].lits)
            .filter(|(val, _)| !pred(**val))
            .map(|(_, l)| *l)
            .collect();
        for l in to_forbid {
            self.sat.add_clause([!l]);
        }
    }

    /// Requires the relation `pred(a, b)` to hold between the values of
    /// `a` and `b`, by forbidding every violating value pair.
    ///
    /// Complexity is `|dom(a)| · |dom(b)|` binary clauses in the worst
    /// case — intended for the small schedule-window domains of the CGRA
    /// time formulation.
    pub fn require_binary<F>(&mut self, a: IntVar, b: IntVar, pred: F)
    where
        F: Fn(i64, i64) -> bool,
    {
        let mut forbidden = Vec::new();
        {
            let da = &self.vars[a.index()];
            let db = &self.vars[b.index()];
            for (ia, &va) in da.domain.iter().enumerate() {
                for (ib, &vb) in db.domain.iter().enumerate() {
                    if !pred(va, vb) {
                        forbidden.push((da.lits[ia], db.lits[ib]));
                    }
                }
            }
        }
        for (la, lb) in forbidden {
            self.sat.add_clause([!la, !lb]);
        }
    }

    /// Requires `pred(a, b)` to hold whenever `guard` is true.
    pub fn require_binary_if<F>(&mut self, guard: Lit, a: IntVar, b: IntVar, pred: F)
    where
        F: Fn(i64, i64) -> bool,
    {
        let mut forbidden = Vec::new();
        {
            let da = &self.vars[a.index()];
            let db = &self.vars[b.index()];
            for (ia, &va) in da.domain.iter().enumerate() {
                for (ib, &vb) in db.domain.iter().enumerate() {
                    if !pred(va, vb) {
                        forbidden.push((da.lits[ia], db.lits[ib]));
                    }
                }
            }
        }
        for (la, lb) in forbidden {
            self.sat.add_clause([!guard, !la, !lb]);
        }
    }

    /// Returns a literal defined (via Tseitin) to be the disjunction of
    /// `lits`.
    pub fn or_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let y = self.sat.new_var().pos();
        for &l in lits {
            self.sat.add_clause([!l, y]);
        }
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(!y);
        long.extend_from_slice(lits);
        self.sat.add_clause(long);
        y
    }

    /// Returns a literal defined (via Tseitin) to be the conjunction of
    /// `lits`.
    pub fn and_lit(&mut self, lits: &[Lit]) -> Lit {
        if lits.len() == 1 {
            return lits[0];
        }
        let y = self.sat.new_var().pos();
        for &l in lits {
            self.sat.add_clause([!y, l]);
        }
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(y);
        long.extend(lits.iter().map(|&l| !l));
        self.sat.add_clause(long);
        y
    }

    /// At most `k` of `lits` may be true.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::at_most_k(&mut self.sat, lits, k);
    }

    /// At least `k` of `lits` must be true.
    pub fn at_least_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::at_least_k(&mut self.sat, lits, k);
    }

    /// Exactly `k` of `lits` must be true.
    pub fn exactly_k(&mut self, lits: &[Lit], k: usize) {
        cardinality::exactly_k(&mut self.sat, lits, k);
    }

    /// Decides the accumulated constraints.
    pub fn solve(&mut self) -> SatResult {
        self.sat.solve()
    }

    /// Decides under a resource budget; returns
    /// [`SatResult::Unknown`](cgra_sat::SatResult::Unknown) when exhausted.
    pub fn solve_limited(&mut self, budget: &Budget) -> SatResult {
        self.sat.solve_limited(&[], budget)
    }

    /// Decides under assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.sat.solve_with_assumptions(assumptions)
    }

    /// Decides under assumption literals and a resource budget.
    pub fn solve_with_assumptions_limited(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
    ) -> SatResult {
        self.sat.solve_limited(assumptions, budget)
    }

    /// When the last assumption solve returned Unsat, the subset of
    /// assumption literals (negated) proven contradictory (see
    /// [`cgra_sat::Solver::unsat_core`]).
    pub fn unsat_core(&self) -> &[Lit] {
        self.sat.unsat_core()
    }

    /// Installs a cooperative cancellation flag (see
    /// [`cgra_sat::Solver::set_cancel_flag`]).
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.sat.set_cancel_flag(flag);
    }

    /// The value of `v` in the current model.
    ///
    /// # Panics
    ///
    /// Panics if the last `solve` did not return Sat, or if the model is
    /// no longer current (e.g. clauses were added since).
    pub fn value(&self, v: IntVar) -> i64 {
        let data = &self.vars[v.index()];
        for (i, &l) in data.lits.iter().enumerate() {
            if self.sat.lit_value(l).is_true() {
                return data.domain[i];
            }
        }
        panic!("no model value for {v:?}: call solve() first");
    }

    /// The truth value of a Boolean literal in the current model.
    pub fn bool_value(&self, l: Lit) -> bool {
        self.sat.lit_value(l).is_true()
    }

    /// Adds a blocking clause excluding the current assignment of `vars`,
    /// enabling solution enumeration over that projection.
    ///
    /// Must be called while a model is current; reads the model before
    /// modifying the clause database.
    pub fn block_current(&mut self, vars: &[IntVar]) {
        let clause: Vec<Lit> = vars
            .iter()
            .map(|&v| {
                let val = self.value(v);
                !self.eq_lit(v, val).expect("model value is in the domain")
            })
            .collect();
        self.sat.add_clause(clause);
    }

    /// Sizes of the current encoding.
    pub fn stats(&self) -> FdStats {
        FdStats {
            int_vars: self.vars.len(),
            sat_vars: self.sat.num_vars(),
            clauses: self.sat.num_clauses(),
        }
    }

    /// Borrows the underlying SAT solver (for advanced encodings).
    pub fn sat_mut(&mut self) -> &mut Solver {
        &mut self.sat
    }

    /// Borrows the underlying SAT solver immutably (stats inspection).
    pub fn sat(&self) -> &Solver {
        &self.sat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_domain() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([7]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_eq!(fd.value(x), 7);
    }

    #[test]
    fn domains_are_sorted_and_deduped() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([3, 1, 2, 3, 1]);
        assert_eq!(fd.domain(x), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_panics() {
        let mut fd = FdSolver::new();
        let _ = fd.new_int([]);
    }

    #[test]
    fn unary_constraint_prunes() {
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..10);
        fd.require_unary(x, |v| v % 2 == 0 && v > 5);
        assert_eq!(fd.solve(), SatResult::Sat);
        let v = fd.value(x);
        assert!(v % 2 == 0 && v > 5);
    }

    #[test]
    fn unsat_unary() {
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..5);
        fd.require_unary(x, |v| v > 10);
        assert_eq!(fd.solve(), SatResult::Unsat);
    }

    #[test]
    fn binary_ordering_chain() {
        // x0 < x1 < x2 < x3 over 0..4 forces the identity assignment.
        let mut fd = FdSolver::new();
        let xs: Vec<IntVar> = (0..4).map(|_| fd.new_int(0..4)).collect();
        for w in xs.windows(2) {
            fd.require_binary(w[0], w[1], |a, b| a < b);
        }
        assert_eq!(fd.solve(), FdResultAlias::Sat);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(fd.value(x), i as i64);
        }
    }

    // Local alias to exercise the public re-export path.
    use cgra_sat::SatResult as FdResultAlias;

    #[test]
    fn guarded_binary_constraint() {
        let mut fd = FdSolver::new();
        let g = fd.new_bool();
        let x = fd.new_int(0..3);
        let y = fd.new_int(0..3);
        fd.require_binary_if(g, x, y, |a, b| a == b);
        fd.require_binary(x, y, |a, b| a != b || a == 2);
        // With the guard on, x == y == 2 is the only option.
        fd.add_clause([g]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_eq!(fd.value(x), 2);
        assert_eq!(fd.value(y), 2);
    }

    #[test]
    fn enumeration_counts_solutions() {
        // x + y == 3 over 0..=3 has exactly 4 solutions.
        let mut fd = FdSolver::new();
        let x = fd.new_int(0..=3);
        let y = fd.new_int(0..=3);
        fd.require_binary(x, y, |a, b| a + b == 3);
        let mut n = 0;
        while fd.solve() == SatResult::Sat {
            n += 1;
            assert!(n <= 4, "too many solutions");
            fd.block_current(&[x, y]);
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn or_and_lits() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([0, 1]);
        let y = fd.new_int([0, 1]);
        let x1 = fd.eq_lit(x, 1).unwrap();
        let y1 = fd.eq_lit(y, 1).unwrap();
        let both = fd.and_lit(&[x1, y1]);
        let either = fd.or_lit(&[x1, y1]);
        fd.add_clause([either]);
        fd.add_clause([!both]);
        assert_eq!(fd.solve(), SatResult::Sat);
        assert_ne!(fd.value(x), fd.value(y));
    }

    #[test]
    fn cardinality_over_indicators() {
        // Five variables over 0..3; at most 2 may take the value 0.
        let mut fd = FdSolver::new();
        let xs: Vec<IntVar> = (0..5).map(|_| fd.new_int(0..3)).collect();
        let zeros: Vec<Lit> = xs.iter().map(|&x| fd.eq_lit(x, 0).unwrap()).collect();
        fd.at_most_k(&zeros, 2);
        // Force three of them to 0 => unsat.
        for &x in xs.iter().take(3) {
            fd.require_unary(x, |v| v == 0);
        }
        assert_eq!(fd.solve(), SatResult::Unsat);
    }

    #[test]
    fn eq_lit_for_out_of_domain_value() {
        let mut fd = FdSolver::new();
        let x = fd.new_int([1, 3, 5]);
        assert!(fd.eq_lit(x, 2).is_none());
        assert!(fd.eq_lit(x, 3).is_some());
    }

    #[test]
    fn guarded_int_behaves_like_plain_under_its_guard() {
        let mut fd = FdSolver::new();
        let g = fd.new_bool();
        let x = fd.new_int_guarded(0..3, g);
        fd.require_unary(x, |v| v == 2);
        // Guard off: x may take no value at all — satisfiable.
        assert_eq!(fd.solve_with_assumptions(&[!g]), SatResult::Sat);
        // Guard on: x must take a value, and only 2 remains.
        assert_eq!(fd.solve_with_assumptions(&[g]), SatResult::Sat);
        assert_eq!(fd.value(x), 2);
    }

    #[test]
    fn extend_int_widens_monotonically() {
        // Start with a window that is too tight, then widen it on the
        // same instance instead of rebuilding.
        let mut fd = FdSolver::new();
        let g0 = fd.new_bool();
        let x = fd.new_int_guarded(0..3, g0);
        let y = fd.new_int_guarded(0..3, g0);
        fd.require_binary(x, y, |a, b| b >= a + 3);
        assert_eq!(fd.solve_with_assumptions(&[g0]), SatResult::Unsat);
        assert!(fd.unsat_core().iter().all(|&l| l == !g0));
        // Widen y to 0..6 under a fresh guard; retire g0 permanently.
        let g1 = fd.new_bool();
        let old_len = fd.domain(y).len();
        assert_eq!(fd.extend_int(y, 3..6, g1), 3);
        fd.extend_int(x, std::iter::empty(), g1);
        fd.add_clause([!g0]);
        fd.require_binary_from(x, y, old_len, old_len, |a, b| b >= a + 3);
        assert_eq!(fd.domain(y), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(fd.solve_with_assumptions(&[g1]), SatResult::Sat);
        let (vx, vy) = (fd.value(x), fd.value(y));
        assert!(vy >= vx + 3, "x={vx} y={vy}");
    }

    #[test]
    fn extend_int_keeps_at_most_one() {
        let mut fd = FdSolver::new();
        let g0 = fd.new_bool();
        let x = fd.new_int_guarded([0, 1], g0);
        let g1 = fd.new_bool();
        fd.extend_int(x, [2, 3], g1);
        fd.add_clause([!g0]);
        // No pair of indicators may hold together, across old and new.
        let lits: Vec<Lit> = fd.indicator_lits(x).map(|(_, l)| l).collect();
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                assert_eq!(
                    fd.solve_with_assumptions(&[g1, lits[i], lits[j]]),
                    SatResult::Unsat,
                    "values {i} and {j} held together"
                );
            }
        }
        // Every single value is still reachable.
        for (val, l) in fd.indicator_lits(x).collect::<Vec<_>>() {
            assert_eq!(fd.solve_with_assumptions(&[g1, l]), SatResult::Sat);
            assert_eq!(fd.value(x), val);
        }
    }

    #[test]
    #[should_panic(expected = "strictly above")]
    fn extend_int_rejects_non_appending_values() {
        let mut fd = FdSolver::new();
        let g = fd.new_bool();
        let x = fd.new_int_guarded(0..3, g);
        fd.extend_int(x, [2, 5], g);
    }

    #[test]
    fn require_binary_from_adds_exactly_the_delta() {
        // Full-domain require_binary on one solver vs incremental
        // base + delta on another must accept/reject the same pairs.
        let reference = {
            let mut fd = FdSolver::new();
            let x = fd.new_int(0..5);
            let y = fd.new_int(0..5);
            fd.require_binary(x, y, |a, b| a + b != 4);
            let mut pairs = Vec::new();
            while fd.solve() == SatResult::Sat {
                pairs.push((fd.value(x), fd.value(y)));
                fd.block_current(&[x, y]);
            }
            pairs.sort_unstable();
            pairs
        };
        let incremental = {
            let mut fd = FdSolver::new();
            let g0 = fd.new_bool();
            let x = fd.new_int_guarded(0..3, g0);
            let y = fd.new_int_guarded(0..3, g0);
            fd.require_binary(x, y, |a, b| a + b != 4);
            let g1 = fd.new_bool();
            fd.extend_int(x, 3..5, g1);
            fd.extend_int(y, 3..5, g1);
            fd.add_clause([!g0]);
            fd.require_binary_from(x, y, 3, 3, |a, b| a + b != 4);
            let mut pairs = Vec::new();
            while fd.solve_with_assumptions(&[g1]) == SatResult::Sat {
                pairs.push((fd.value(x), fd.value(y)));
                fd.block_current(&[x, y]);
            }
            pairs.sort_unstable();
            pairs
        };
        assert_eq!(reference, incremental);
    }

    #[test]
    fn assumption_budget_reports_unknown() {
        let mut fd = FdSolver::new();
        let g = fd.new_bool();
        let xs: Vec<IntVar> = (0..6).map(|_| fd.new_int_guarded(0..5, g)).collect();
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                fd.require_binary(xs[i], xs[j], |a, b| a != b);
            }
        }
        let r = fd.solve_with_assumptions_limited(&[g], &Budget::conflicts(0));
        assert_eq!(r, SatResult::Unknown);
        // The same instance still resolves once given room.
        assert_eq!(fd.solve_with_assumptions(&[g]), SatResult::Unsat);
    }

    #[test]
    fn stats_report_sizes() {
        let mut fd = FdSolver::new();
        let _ = fd.new_int(0..8);
        let s = fd.stats();
        assert_eq!(s.int_vars, 1);
        assert!(s.sat_vars >= 8);
        assert!(s.clauses > 0);
    }
}
