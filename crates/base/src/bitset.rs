//! The one word-backed dense bit set of the workspace.
//!
//! Both halves of the mapper lean on hot bitset intersection loops: the
//! monomorphism engine intersects neighbourhood rows of the target graph
//! (`cgra-iso`), and the architecture model keeps per-PE adjacency masks
//! (`cgra-arch`). Historically each crate carried its own near-identical
//! 64-bit-word implementation; they are consolidated here so every
//! future word-level optimisation (SIMD, popcount batching, row sharing)
//! lands in exactly one place.
//!
//! [`DenseBitSet`] is the raw `usize`-indexed set; [`IndexSet`] wraps it
//! with a typed index (any [`DenseIndex`] newtype such as a PE id) at
//! zero cost.

use std::fmt;
use std::marker::PhantomData;

/// A fixed-capacity set of dense indices backed by a `u64` word vector.
///
/// All set algebra is in-place and word-parallel; membership and
/// insertion are O(1). Capacity is fixed at construction (the exclusive
/// upper bound on indices).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseBitSet {
    /// Creates an empty set over indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = DenseBitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.mask_tail();
        s
    }

    /// Clears bits of the last word beyond `capacity`, maintaining the
    /// invariant that no bit at index `>= capacity` is ever set (word
    /// iteration, `len` and equality all rely on it).
    fn mask_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The exclusive upper bound on indices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes an index (no-op when absent or out of range).
    pub fn remove(&mut self, i: usize) {
        if i < self.capacity {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test (out-of-range indices are never members).
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every member, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place intersection (`self ∩= other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union (`self ∪= other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (a mismatched union could set
    /// bits beyond this set's capacity, breaking the invariant that
    /// `len`, iteration and equality rely on).
    pub fn union_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \= other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn subtract(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Copies `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Sets `self = base \ exclude` in one word-parallel pass,
    /// reporting whether any member remains.
    ///
    /// Fuses [`DenseBitSet::copy_from`], [`DenseBitSet::subtract`] and
    /// the emptiness test that search inner loops would otherwise run
    /// as three separate passes over the backing words. Occupancy is
    /// accumulated bitwise alongside the stores, so the loop body stays
    /// branch-free.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn assign_difference(&mut self, base: &DenseBitSet, exclude: &DenseBitSet) -> bool {
        assert_eq!(self.capacity, base.capacity, "capacity mismatch");
        assert_eq!(self.capacity, exclude.capacity, "capacity mismatch");
        let mut any = 0u64;
        for ((d, &b), &e) in self.words.iter_mut().zip(&base.words).zip(&exclude.words) {
            let w = b & !e;
            *d = w;
            any |= w;
        }
        any != 0
    }

    /// In-place intersection (`self ∩= other`) reporting whether any
    /// member remains — the emptiness check comes free with the pass.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_any(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut any = 0u64;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
            any |= *a;
        }
        any != 0
    }

    /// The smallest member at or after `from`, if any.
    ///
    /// Together with a cursor this supports allocation-free iteration
    /// over a set that may be mutated between calls (the monomorphism
    /// engine's domain stack): `next_member(cursor)` then advance the
    /// cursor past the returned index.
    pub fn next_member(&self, from: usize) -> Option<usize> {
        if from >= self.capacity {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words (tail bits beyond the capacity are zero).
    ///
    /// Exposed for word-level consumers (popcount batching, SIMD
    /// experiments); prefer the set API elsewhere.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects indices into a set sized to the largest index seen.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().map(|&i| i + 1).max().unwrap_or(0);
        let mut s = DenseBitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the members of a [`DenseBitSet`] in ascending order.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A dense zero-based index type (a typed newtype over `usize`).
///
/// Implement this for id types like `PeId` to get a typed [`IndexSet`]
/// over them for free.
pub trait DenseIndex: Copy {
    /// Constructs the id from its dense index.
    fn from_index(index: usize) -> Self;
    /// The dense index of this id.
    fn index(self) -> usize;
}

impl DenseIndex for usize {
    fn from_index(index: usize) -> Self {
        index
    }

    fn index(self) -> usize {
        self
    }
}

/// A typed wrapper over [`DenseBitSet`]: a set of `I` where `I` is a
/// dense newtype index ([`DenseIndex`]).
///
/// The wrapper is zero-cost — it stores exactly a [`DenseBitSet`] — and
/// exists so id types from different domains (PEs, DFG nodes, MRRG
/// vertices) cannot be mixed up in one set.
pub struct IndexSet<I> {
    raw: DenseBitSet,
    _marker: PhantomData<I>,
}

impl<I: DenseIndex> IndexSet<I> {
    /// Creates an empty set able to hold ids with indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexSet {
            raw: DenseBitSet::new(capacity),
            _marker: PhantomData,
        }
    }

    /// Creates a set containing every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        IndexSet {
            raw: DenseBitSet::full(capacity),
            _marker: PhantomData,
        }
    }

    /// The capacity (exclusive upper bound on indices).
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Inserts an id.
    ///
    /// # Panics
    ///
    /// Panics if the id's index is out of range.
    pub fn insert(&mut self, id: I) {
        self.raw.insert(id.index());
    }

    /// Removes an id (no-op if absent).
    pub fn remove(&mut self, id: I) {
        self.raw.remove(id.index());
    }

    /// Membership test.
    pub fn contains(&self, id: I) -> bool {
        self.raw.contains(id.index())
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Removes every member, keeping the capacity.
    pub fn clear(&mut self) {
        self.raw.clear();
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &IndexSet<I>) {
        self.raw.intersect_with(&other.raw);
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &IndexSet<I>) {
        self.raw.union_with(&other.raw);
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &IndexSet<I>) {
        self.raw.subtract(&other.raw);
    }

    /// Copies `other` into `self` (capacities must match).
    pub fn copy_from(&mut self, other: &IndexSet<I>) {
        self.raw.copy_from(&other.raw);
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> TypedIter<'_, I> {
        TypedIter {
            inner: self.raw.iter(),
            _marker: PhantomData,
        }
    }

    /// The untyped set underneath (for word-level consumers).
    pub fn as_raw(&self) -> &DenseBitSet {
        &self.raw
    }
}

impl<I> Clone for IndexSet<I> {
    fn clone(&self) -> Self {
        IndexSet {
            raw: self.raw.clone(),
            _marker: PhantomData,
        }
    }
}

impl<I> Default for IndexSet<I> {
    fn default() -> Self {
        IndexSet {
            raw: DenseBitSet::default(),
            _marker: PhantomData,
        }
    }
}

impl<I> PartialEq for IndexSet<I> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl<I> Eq for IndexSet<I> {}

impl<I> std::hash::Hash for IndexSet<I> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<I: DenseIndex + fmt::Debug> fmt::Debug for IndexSet<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<I: DenseIndex> FromIterator<I> for IndexSet<I> {
    /// Collects ids into a set sized to the largest index seen.
    fn from_iter<T: IntoIterator<Item = I>>(iter: T) -> Self {
        IndexSet {
            raw: iter.into_iter().map(DenseIndex::index).collect(),
            _marker: PhantomData,
        }
    }
}

impl<I: DenseIndex> Extend<I> for IndexSet<I> {
    fn extend<T: IntoIterator<Item = I>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a, I: DenseIndex> IntoIterator for &'a IndexSet<I> {
    type Item = I;
    type IntoIter = TypedIter<'a, I>;

    fn into_iter(self) -> TypedIter<'a, I> {
        self.iter()
    }
}

/// Iterator over the members of an [`IndexSet`] in ascending index
/// order.
#[derive(Clone, Debug)]
pub struct TypedIter<'a, I> {
    inner: Iter<'a>,
    _marker: PhantomData<I>,
}

impl<I: DenseIndex> Iterator for TypedIter<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        self.inner.next().map(I::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = DenseBitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn full_respects_capacity() {
        let s = DenseBitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let mut a = DenseBitSet::full(70);
        let b: DenseBitSet = [3usize, 68].iter().copied().collect();
        let mut b70 = DenseBitSet::new(70);
        for i in b.iter() {
            b70.insert(i);
        }
        a.subtract(&b70);
        assert_eq!(a.len(), 68);
        a.union_with(&b70);
        assert_eq!(a.len(), 70);
        a.intersect_with(&b70);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 68]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseBitSet::full(65);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 65);
        s.insert(64);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = DenseBitSet::new(10);
        a.insert(1);
        let mut b = DenseBitSet::new(10);
        b.insert(7);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = DenseBitSet::new(3);
        s.insert(3);
    }

    #[test]
    fn next_member_scans_from_cursor() {
        let s: DenseBitSet = [0usize, 5, 63, 64, 129].iter().copied().collect();
        assert_eq!(s.next_member(0), Some(0));
        assert_eq!(s.next_member(1), Some(5));
        assert_eq!(s.next_member(6), Some(63));
        assert_eq!(s.next_member(64), Some(64));
        assert_eq!(s.next_member(65), Some(129));
        assert_eq!(s.next_member(130), None);
        assert_eq!(s.next_member(10_000), None);
        // Cursor-style walk visits exactly the members, in order.
        let mut cursor = 0;
        let mut seen = Vec::new();
        while let Some(i) = s.next_member(cursor) {
            seen.push(i);
            cursor = i + 1;
        }
        assert_eq!(seen, s.iter().collect::<Vec<_>>());
        assert_eq!(DenseBitSet::new(0).next_member(0), None);
    }

    #[test]
    fn zero_capacity_is_workable() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(DenseBitSet::full(0), s);
    }

    #[test]
    fn fused_ops_match_their_separate_passes() {
        let a: DenseBitSet = [0usize, 5, 63, 64, 100].iter().copied().collect();
        let mut a129 = DenseBitSet::new(129);
        a129.extend(a.iter());
        let mut b = DenseBitSet::new(129);
        b.extend([5usize, 64, 128]);
        let mut fused = DenseBitSet::new(129);
        let any = fused.assign_difference(&a129, &b);
        let mut split = a129.clone();
        split.subtract(&b);
        assert_eq!(fused, split);
        assert_eq!(any, !split.is_empty());
        let mut c = DenseBitSet::new(129);
        c.extend([0usize, 100]);
        let any = fused.intersect_any(&c);
        assert!(any);
        assert_eq!(fused.iter().collect::<Vec<_>>(), vec![0, 100]);
        let empty = DenseBitSet::new(129);
        assert!(!fused.intersect_any(&empty));
        assert!(fused.is_empty());
    }

    /// Randomized model check of the fused passes against a `HashSet`
    /// oracle, xorshift-driven (the workspace has no property-testing
    /// dependency by design).
    #[test]
    fn fused_ops_agree_with_a_hashset_oracle() {
        use std::collections::HashSet;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            // Capacities straddle the word boundaries.
            let cap = 1 + (rng() % 200) as usize;
            let random_set = |rng: &mut dyn FnMut() -> u64| {
                let mut s = DenseBitSet::new(cap);
                let mut o = HashSet::new();
                let n = (rng() % 64) as usize;
                for _ in 0..n {
                    let i = (rng() % cap as u64) as usize;
                    s.insert(i);
                    o.insert(i);
                }
                (s, o)
            };
            let (base, base_o) = random_set(&mut rng);
            let (excl, excl_o) = random_set(&mut rng);
            let (row, row_o) = random_set(&mut rng);
            let mut dom = DenseBitSet::new(cap);
            let any = dom.assign_difference(&base, &excl);
            let expect: HashSet<usize> = base_o.difference(&excl_o).copied().collect();
            assert_eq!(
                dom.iter().collect::<HashSet<_>>(),
                expect,
                "round {round}: difference"
            );
            assert_eq!(any, !expect.is_empty(), "round {round}: occupancy");
            let any = dom.intersect_any(&row);
            let expect: HashSet<usize> = expect.intersection(&row_o).copied().collect();
            assert_eq!(
                dom.iter().collect::<HashSet<_>>(),
                expect,
                "round {round}: intersection"
            );
            assert_eq!(any, !expect.is_empty(), "round {round}: occupancy");
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Id(u16);

    impl DenseIndex for Id {
        fn from_index(index: usize) -> Self {
            Id(index as u16)
        }

        fn index(self) -> usize {
            self.0 as usize
        }
    }

    #[test]
    fn typed_wrapper_round_trips() {
        let mut s: IndexSet<Id> = IndexSet::new(100);
        s.extend([Id(3), Id(64), Id(99)]);
        assert!(s.contains(Id(64)));
        assert!(!s.contains(Id(65)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Id(3), Id(64), Id(99)]);
        let from_iter: IndexSet<Id> = [Id(5), Id(17)].into_iter().collect();
        assert_eq!(from_iter.capacity(), 18);
        assert_eq!(from_iter.len(), 2);
    }

    #[test]
    fn typed_wrapper_algebra_matches_raw() {
        let mut a: IndexSet<Id> = IndexSet::new(10);
        a.extend([Id(1), Id(2), Id(3)]);
        let mut b: IndexSet<Id> = IndexSet::new(10);
        b.extend([Id(2), Id(3), Id(4)]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![Id(2), Id(3)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![Id(1)]);
    }
}
