//! Cooperative cancellation.
//!
//! Every long-running search in the workspace (the CDCL core, the
//! decoupled mapper, the coupled baseline, the bench harness watchdog)
//! shares one cancellation idiom: an `Arc<AtomicBool>` raised by a
//! controller and polled at cheap points inside the search.
//! [`CancelFlag`] packages that idiom so each crate stops re-deriving
//! the atomic-ordering details.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cooperative cancellation flag.
///
/// Cloning the flag (or handing out [`CancelFlag::arc`]) shares the same
/// underlying signal: raising any handle cancels all of them. Public
/// solver APIs keep accepting a raw `Arc<AtomicBool>`; this type is the
/// common implementation behind them.
///
/// # Examples
///
/// ```
/// use cgra_base::CancelFlag;
///
/// let flag = CancelFlag::new();
/// let worker = flag.clone();
/// assert!(!worker.is_cancelled());
/// flag.cancel();
/// assert!(worker.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelFlag {
    flag: Arc<AtomicBool>,
}

impl CancelFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Wraps an existing shared atomic (the representation solver APIs
    /// accept), sharing its signal.
    pub fn from_arc(flag: Arc<AtomicBool>) -> Self {
        CancelFlag { flag }
    }

    /// A clone of the underlying shared atomic, for handing to APIs
    /// that take `Arc<AtomicBool>`.
    pub fn arc(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Raises the flag; every handle sharing it observes the
    /// cancellation at its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Polls the flag.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl From<Arc<AtomicBool>> for CancelFlag {
    fn from(flag: Arc<AtomicBool>) -> Self {
        CancelFlag::from_arc(flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelFlag::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn from_arc_shares_the_signal() {
        let raw = Arc::new(AtomicBool::new(false));
        let flag = CancelFlag::from_arc(Arc::clone(&raw));
        raw.store(true, Ordering::Relaxed);
        assert!(flag.is_cancelled());
    }

    #[test]
    fn arc_accessor_round_trips() {
        let flag = CancelFlag::new();
        let raw = flag.arc();
        flag.cancel();
        assert!(raw.load(Ordering::Relaxed));
    }
}
