//! Resource budgets for interruptible searches.

/// Resource limits for a single solver or search invocation.
///
/// A limit of `None` means unlimited. When a limit is hit, the consumer
/// stops early and reports an indeterminate outcome (the SAT core
/// returns its `Unknown` result).
///
/// Shared by the CDCL SAT core (`cgra-sat`), the finite-domain layer
/// (`cgra-smt`), the time solver (`cgra-sched`) and the coupled baseline
/// (`cgra-baseline`).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum number of conflicts.
    pub max_conflicts: Option<u64>,
    /// Maximum number of propagations.
    pub max_propagations: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget limited to `n` conflicts.
    pub fn conflicts(n: u64) -> Self {
        Budget {
            max_conflicts: Some(n),
            max_propagations: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_has_no_caps() {
        let b = Budget::unlimited();
        assert_eq!(b.max_conflicts, None);
        assert_eq!(b.max_propagations, None);
    }

    #[test]
    fn conflicts_sets_only_conflicts() {
        let b = Budget::conflicts(42);
        assert_eq!(b.max_conflicts, Some(42));
        assert_eq!(b.max_propagations, None);
    }
}
