//! Deterministic FNV-1a hashing, shared by the workspace's
//! content-addressing machinery.
//!
//! One definition serves both consumers — `cgra-dfg`'s canonical-form
//! digest and `monomap-core`'s request fingerprints — so the constants
//! can never drift apart between the two halves of a cache key. Not
//! cryptographic: these defend against accidental collision, not an
//! adversary (exact consumers compare the full preimage as well).

/// The standard 64-bit FNV-1a offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf29ce484222325;

const FNV64_PRIME: u64 = 0x100000001b3;
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Folds `bytes` into a 64-bit FNV-1a state. Pass [`FNV64_OFFSET`] as
/// the seed to start a fresh hash, or a previous result to continue
/// one.
pub fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// The 128-bit FNV-1a hash of `bytes`.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(FNV64_OFFSET, b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(FNV64_OFFSET, b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(FNV64_OFFSET, b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv128(b""), FNV128_OFFSET);
    }

    #[test]
    fn chaining_equals_concatenation() {
        let whole = fnv64(FNV64_OFFSET, b"hello world");
        let chained = fnv64(fnv64(FNV64_OFFSET, b"hello "), b"world");
        assert_eq!(whole, chained);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv64(FNV64_OFFSET, b"a"), fnv64(FNV64_OFFSET, b"b"));
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }
}
