//! # cgra-base — shared substrate of the monomap workspace
//!
//! The zero-dependency foundation under every other crate:
//!
//! * [`DenseBitSet`] — the single word-backed bit set used by both hot
//!   halves of the mapper (neighbourhood intersection in `cgra-iso`,
//!   adjacency masks in `cgra-arch`), with [`IndexSet`] as its
//!   zero-cost typed-index wrapper and [`DenseIndex`] as the id trait;
//! * [`Budget`] — conflict/propagation limits shared by the SAT core,
//!   the finite-domain layer and the solvers built on them;
//! * [`CancelFlag`] — the cooperative `Arc<AtomicBool>` cancellation
//!   idiom used by the mappers and the bench harness watchdog;
//! * [`fnv64`]/[`fnv128`] — the deterministic FNV-1a hashes behind the
//!   DFG content digest and the request fingerprints.
//!
//! Keeping these here means performance work on the bitset loops and
//! semantics changes to search control happen in exactly one place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
mod budget;
mod cancel;
pub mod hash;

pub use bitset::{DenseBitSet, DenseIndex, IndexSet};
pub use budget::Budget;
pub use cancel::CancelFlag;
pub use hash::{fnv128, fnv64, FNV64_OFFSET};
