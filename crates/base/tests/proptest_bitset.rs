//! Property-based model checking of [`DenseBitSet`] against
//! `HashSet<usize>`: random op sequences over insert / remove / union /
//! intersect / difference / copy must leave the bit set observably
//! identical to the reference model, across capacities that exercise
//! the tail-word masking edge cases (0, 1, 63, 64, 65 and beyond).

use std::collections::HashSet;

use cgra_base::DenseBitSet;
use proptest::prelude::*;

/// Capacities hitting the word-boundary edge cases plus multi-word
/// sizes.
const CAPS: [usize; 8] = [0, 1, 63, 64, 65, 100, 128, 193];

#[derive(Clone, Copy, Debug)]
enum Op {
    InsertA(usize),
    RemoveA(usize),
    InsertB(usize),
    RemoveB(usize),
    Intersect,
    Union,
    Subtract,
    CopyBFromA,
    ClearA,
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (
        0usize..CAPS.len(),
        proptest::collection::vec((0u8..9, 0usize..200), 0..80),
    )
        .prop_map(|(cap_idx, raw)| {
            let cap = CAPS[cap_idx];
            let ops = raw
                .into_iter()
                .filter_map(|(kind, v)| {
                    // Inserts need an in-range index; removes may go out
                    // of range on purpose (documented no-op).
                    let in_range = if cap == 0 { None } else { Some(v % cap) };
                    Some(match kind {
                        0 => Op::InsertA(in_range?),
                        1 => Op::RemoveA(v),
                        2 => Op::InsertB(in_range?),
                        3 => Op::RemoveB(v),
                        4 => Op::Intersect,
                        5 => Op::Union,
                        6 => Op::Subtract,
                        7 => Op::CopyBFromA,
                        _ => Op::ClearA,
                    })
                })
                .collect();
            (cap, ops)
        })
}

/// Asserts every observable of `set` matches the model.
fn check_matches(
    set: &DenseBitSet,
    model: &HashSet<usize>,
    cap: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(set.len(), model.len());
    prop_assert_eq!(set.is_empty(), model.is_empty());
    prop_assert_eq!(set.capacity(), cap);
    let mut expected: Vec<usize> = model.iter().copied().collect();
    expected.sort_unstable();
    let got: Vec<usize> = set.iter().collect();
    prop_assert_eq!(&got, &expected, "iteration mismatch at capacity {}", cap);
    // Membership agrees in and beyond the capacity.
    for i in 0..cap + 70 {
        prop_assert_eq!(
            set.contains(i),
            model.contains(&i),
            "contains({}) at capacity {}",
            i,
            cap
        );
    }
    // No bit beyond the capacity may ever leak into the words.
    for (w, &word) in set.words().iter().enumerate() {
        for bit in 0..64 {
            if word >> bit & 1 == 1 {
                prop_assert!(
                    w * 64 + bit < cap,
                    "stray tail bit {} at capacity {}",
                    w * 64 + bit,
                    cap
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn op_sequences_match_hashset_model((cap, ops) in arb_ops()) {
        let mut a = DenseBitSet::new(cap);
        let mut b = DenseBitSet::new(cap);
        let mut ma: HashSet<usize> = HashSet::new();
        let mut mb: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                Op::InsertA(v) => { a.insert(v); ma.insert(v); }
                Op::RemoveA(v) => { a.remove(v); ma.remove(&v); }
                Op::InsertB(v) => { b.insert(v); mb.insert(v); }
                Op::RemoveB(v) => { b.remove(v); mb.remove(&v); }
                Op::Intersect => { a.intersect_with(&b); ma.retain(|v| mb.contains(v)); }
                Op::Union => { a.union_with(&b); ma.extend(mb.iter().copied()); }
                Op::Subtract => { a.subtract(&b); ma.retain(|v| !mb.contains(v)); }
                Op::CopyBFromA => { b.copy_from(&a); mb = ma.clone(); }
                Op::ClearA => { a.clear(); ma.clear(); }
            }
            check_matches(&a, &ma, cap)?;
            check_matches(&b, &mb, cap)?;
        }
    }

    #[test]
    fn full_matches_universe_model(cap_idx in 0usize..CAPS.len()) {
        let cap = CAPS[cap_idx];
        let full = DenseBitSet::full(cap);
        let model: HashSet<usize> = (0..cap).collect();
        check_matches(&full, &model, cap)?;
        // Unioning anything into the universe is a no-op.
        let mut u = full.clone();
        u.union_with(&DenseBitSet::full(cap));
        prop_assert_eq!(&u, &full);
    }

    #[test]
    fn from_iterator_agrees_with_insertion(raw in proptest::collection::vec(0usize..190, 0..40)) {
        let collected: DenseBitSet = raw.iter().copied().collect();
        let model: HashSet<usize> = raw.iter().copied().collect();
        let expected_cap = raw.iter().map(|&v| v + 1).max().unwrap_or(0);
        check_matches(&collected, &model, expected_cap)?;
    }
}
