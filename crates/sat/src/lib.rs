//! # cgra-sat — a CDCL SAT solver
//!
//! A self-contained conflict-driven clause-learning SAT solver in the
//! MiniSat tradition, built as the decision-procedure substrate of the
//! `monomap` CGRA mapper (it stands in for the Z3 solver used in the
//! paper; the mapper's time formulation is finite-domain and is encoded
//! down to CNF by the `cgra-smt` crate).
//!
//! Features:
//!
//! * two-watched-literal propagation with blocker literals,
//! * first-UIP learning with local clause minimisation,
//! * VSIDS branching, phase saving, Luby restarts,
//! * activity-driven learnt-clause database reduction,
//! * incremental solving (add clauses between solves) and solving under
//!   assumptions with unsat-core extraction,
//! * cooperative cancellation and conflict/propagation budgets,
//! * DIMACS CNF input/output for testing.
//!
//! ## Example
//!
//! ```
//! use cgra_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([a.pos(), b.pos()]); // a ∨ b
//! solver.add_clause([a.neg()]);          // ¬a
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert!(solver.value(b).is_true());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
mod luby;
mod solver;
mod types;

pub use cgra_base::Budget;
pub use luby::luby;
pub use solver::{Solver, SolverStats};
pub use types::{LBool, Lit, SatResult, Var};
