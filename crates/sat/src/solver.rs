//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat lineage: two-watched-literal
//! propagation, first-UIP conflict analysis with local clause
//! minimisation, VSIDS branching with phase saving, Luby restarts and
//! activity-based learnt-clause database reduction. It supports
//! incremental use (adding clauses between `solve` calls) and solving
//! under assumptions.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cgra_base::{Budget, CancelFlag};

use crate::luby::luby;
use crate::types::{LBool, Lit, SatResult, Var};

/// Reference to a clause in the solver's arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f32,
    learnt: bool,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause is satisfied and the watch scan can skip
    /// the clause without touching its memory.
    blocker: Lit,
}

/// Counters describing the work performed by the solver so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnt={} deleted={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses
        )
    }
}

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// Resource limits for a single `solve_limited` call come from the
/// workspace-wide [`Budget`]; when a limit is hit the solver returns
/// [`SatResult::Unknown`].
///
/// # Incremental solving
///
/// A solver instance is designed to be kept alive across many solve
/// calls:
///
/// * **Variables and clauses may be added after a solve.** Both
///   [`Solver::new_var`] and [`Solver::add_clause`] are valid at any
///   point; `add_clause` drops any model left on the trail by a prior
///   `Sat` answer and simplifies the clause against the level-zero
///   assignment before attaching it. Additions are monotone: they can
///   only shrink the model set, never invalidate learnt clauses.
/// * **Learnt clauses and branching state persist.** Clauses learnt by
///   conflict analysis, VSIDS activities and saved phases all survive
///   into subsequent [`Solver::solve`]/[`Solver::solve_with_assumptions`]
///   calls, so re-solving a grown formula resumes from everything the
///   previous search discovered instead of starting cold.
///   [`Solver::num_learnts`] reports the live learnt-clause count so
///   callers can observe how much state is being carried over.
/// * **Assumptions are per-call.** `solve_with_assumptions` treats its
///   literals as temporary pseudo-decisions; nothing about them is
///   baked into the clause database. Encoding retractable facts as
///   guard literals and flipping which guards are assumed is therefore
///   the idiomatic way to move between related problems on one
///   instance. On `Unsat`, [`Solver::unsat_core`] identifies the
///   assumptions actually responsible, which lets a caller distinguish
///   "the guarded facts are contradictory" from "the base formula is".
///
/// # Examples
///
/// ```
/// use cgra_sat::{Solver, SatResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause([a.pos(), b.pos()]);
/// solver.add_clause([a.neg()]);
/// assert_eq!(solver.solve(), SatResult::Sat);
/// assert!(solver.value(b).is_true());
/// ```
pub struct Solver {
    clauses: Vec<Clause>,
    /// Indexed by literal code: clauses in which that literal is watched.
    watches: Vec<Vec<Watcher>>,
    /// Variable assignment values.
    assigns: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (None for decisions).
    reason: Vec<Option<ClauseRef>>,
    /// Assignment trail in chronological order.
    trail: Vec<Lit>,
    /// Trail indices at which each decision level starts.
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    qhead: usize,

    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    var_decay: f64,
    /// Binary max-heap of unassigned variables ordered by activity.
    heap: Vec<Var>,
    heap_index: Vec<i32>,

    /// Saved phases for phase-saving.
    polarity: Vec<bool>,

    cla_inc: f32,

    /// False once an empty clause has been derived at level zero.
    ok: bool,

    /// Scratch flags used by conflict analysis.
    seen: Vec<bool>,

    /// Final conflict clause over the assumptions, in terms of the failed
    /// assumption literals (all negated), when `solve_with_assumptions`
    /// returns Unsat.
    conflict: Vec<Lit>,

    stats: SolverStats,
    cancel: Option<CancelFlag>,

    learnt_cap: usize,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.clauses.len())
            .field("ok", &self.ok)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables and no clauses.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            heap: Vec::new(),
            heap_index: Vec::new(),
            polarity: Vec::new(),
            cla_inc: 1.0,
            ok: true,
            seen: Vec::new(),
            conflict: Vec::new(),
            stats: SolverStats::default(),
            cancel: None,
            learnt_cap: 4000,
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses currently alive (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Work counters accumulated over the lifetime of the solver.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of learnt clauses currently alive in the database (net of
    /// reduction), i.e. the search state retained for the next
    /// incremental solve call.
    pub fn num_learnts(&self) -> usize {
        self.stats.learnt_clauses as usize
    }

    /// Installs a cooperative cancellation flag.
    ///
    /// When the flag becomes `true`, the current and subsequent `solve`
    /// calls return [`SatResult::Unknown`] at the next restart check.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(CancelFlag::from_arc(flag));
    }

    /// Creates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.heap_index.push(-1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Current value of a variable (meaningful after a Sat answer, or for
    /// level-zero implied variables at any time).
    pub fn value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Current value of a literal.
    pub fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].under_sign(l.is_positive())
    }

    /// The satisfying assignment as a vector of `bool` indexed by
    /// variable, valid after [`SatResult::Sat`].
    ///
    /// Unassigned variables (possible when they occur in no clause) are
    /// reported as `false`.
    pub fn model(&self) -> Vec<bool> {
        self.assigns.iter().map(|v| v.is_true()).collect()
    }

    /// When `solve_with_assumptions` returned Unsat, the subset of
    /// assumption literals (negated) proven contradictory — an
    /// unsatisfiable core over the assumptions.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state
    /// (including via this clause being empty after simplification).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was not created by
    /// this solver.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut ps: Vec<Lit> = lits.into_iter().collect();
        for l in &ps {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} refers to an unknown variable"
            );
        }
        if !self.ok {
            return false;
        }
        // Incremental use: drop any model left on the trail by a previous
        // Sat answer before touching the clause database.
        self.cancel_until(0);

        // Simplify: sort, drop duplicates, drop false literals, detect
        // tautologies and satisfied clauses.
        ps.sort_unstable();
        ps.dedup();
        let mut simplified = Vec::with_capacity(ps.len());
        let mut i = 0;
        while i < ps.len() {
            let l = ps[i];
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return true; // tautology: l and !l both present
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }

        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[lits[0].code()].push(w0);
        self.watches[lits[1].code()].push(w1);
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        cref
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l).is_undef());
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Two-watched-literal Boolean constraint propagation.
    ///
    /// Returns the conflicting clause if a conflict is found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let not_p = !p;
            // Visit clauses watching !p (they may have just become unit
            // or conflicting).
            let mut ws = std::mem::take(&mut self.watches[not_p.code()]);
            let mut kept = 0;
            let mut idx = 0;
            'watches: while idx < ws.len() {
                let w = ws[idx];
                idx += 1;
                // Blocker fast path.
                if self.lit_value(w.blocker).is_true() {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cidx = w.clause.0 as usize;
                if self.clauses[cidx].deleted {
                    continue; // drop the watcher entirely
                }
                // Normalise: watched literals live at positions 0 and 1;
                // put !p at position 1.
                {
                    let lits = &mut self.clauses[cidx].lits;
                    if lits[0] == not_p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], not_p);
                }
                let first = self.clauses[cidx].lits[0];
                let new_watcher = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first).is_true() {
                    ws[kept] = new_watcher;
                    kept += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.clauses[cidx].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cidx].lits[k];
                    if !self.lit_value(lk).is_false() {
                        self.clauses[cidx].lits.swap(1, k);
                        self.watches[lk.code()].push(new_watcher);
                        continue 'watches;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[kept] = new_watcher;
                kept += 1;
                if self.lit_value(first).is_false() {
                    // Conflict: keep remaining watchers and stop.
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    while idx < ws.len() {
                        ws[kept] = ws[idx];
                        kept += 1;
                        idx += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(w.clause));
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[not_p.code()].is_empty());
            self.watches[not_p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = l.is_positive();
            self.reason[v.index()] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    // ----- VSIDS heap -------------------------------------------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_index[v.index()] >= 0 {
            return;
        }
        self.heap.push(v);
        self.heap_index[v.index()] = (self.heap.len() - 1) as i32;
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_index[self.heap[i].index()] = i as i32;
        self.heap_index[self.heap[j].index()] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_index[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let hi = self.heap_index[v.index()];
        if hi >= 0 {
            self.heap_sift_up(hi as usize);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        let cl = &mut self.clauses[c.0 as usize];
        cl.activity += self.cla_inc;
        if cl.activity > 1e20 {
            for cl in self.clauses.iter_mut().filter(|c| c.learnt) {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    // ----- conflict analysis -------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            if self.clauses[confl.0 as usize].learnt {
                self.bump_clause(confl);
            }
            let nlits = self.clauses[confl.0 as usize].lits.len();
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..nlits {
                let q = self.clauses[confl.0 as usize].lits[k];
                let qv = q.var();
                if !self.seen[qv.index()] && self.level[qv.index()] > 0 {
                    self.seen[qv.index()] = true;
                    self.bump_var(qv);
                    if self.level[qv.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal of the current level to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pv = self.trail[index];
            self.seen[pv.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pv;
                break;
            }
            p = Some(pv);
            confl = self.reason[pv.var().index()].expect("non-decision must have a reason");
        }

        // Local minimisation: a non-asserting literal is redundant if its
        // reason clause lies entirely within the learnt clause's seen set.
        let mut keep = vec![true; learnt.len()];
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            if let Some(r) = self.reason[l.var().index()] {
                let redundant = self.clauses[r.0 as usize]
                    .lits
                    .iter()
                    .skip(1)
                    .all(|q| self.seen[q.var().index()] || self.level[q.var().index()] == 0);
                if redundant {
                    keep[i] = false;
                }
            }
        }
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, l) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(*l);
            }
        }
        // Clear seen flags.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Compute the backtrack level and put a literal of that level at
        // index 1 (it becomes the second watch).
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt)
    }

    /// Builds the final conflict over assumptions: the set of assumption
    /// literals whose negations imply the conflict literal `p`.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict.clear();
        self.conflict.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision, i.e. an assumption.
                    self.conflict.push(!self.trail[i]);
                }
                Some(r) => {
                    for k in 1..self.clauses[r.0 as usize].lits.len() {
                        let q = self.clauses[r.0 as usize].lits[k];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    // ----- learnt DB reduction ------------------------------------------

    fn reduce_db(&mut self) {
        let mut learnts: Vec<(f32, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        learnts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let locked: Vec<bool> = learnts
            .iter()
            .map(|&(_, i)| {
                let first = self.clauses[i].lits[0];
                self.reason[first.var().index()] == Some(ClauseRef(i as u32))
                    && !self.lit_value(first).is_undef()
            })
            .collect();
        let target = learnts.len() / 2;
        let mut removed = 0;
        for (k, &(_, i)) in learnts.iter().enumerate() {
            if removed >= target {
                break;
            }
            if locked[k] {
                continue;
            }
            self.clauses[i].deleted = true;
            self.clauses[i].lits.clear();
            self.clauses[i].lits.shrink_to_fit();
            removed += 1;
        }
        self.stats.deleted_clauses += removed as u64;
        self.stats.learnt_clauses -= removed as u64;
        // Watch lists lazily drop deleted clauses during propagation, but
        // sweep them here so memory does not accumulate.
        for ws in &mut self.watches {
            ws.retain(|w| !self.clauses[w.clause.0 as usize].deleted);
        }
    }

    // ----- search --------------------------------------------------------

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> SatResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                // Backjump; if this undoes assumption levels the decide
                // loop below re-establishes them.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    debug_assert_eq!(self.decision_level(), 0);
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref);
                    let first = self.clauses[cref.0 as usize].lits[0];
                    debug_assert!(self.lit_value(first).is_undef());
                    self.unchecked_enqueue(first, Some(cref));
                }
                self.decay_activities();
            } else {
                // Budget and cancellation are checked at every decision
                // point so external timeouts stay responsive even on
                // propagation-heavy instances.
                if conflicts_here >= conflict_budget || self.cancelled() {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                if self.stats.learnt_clauses as usize > self.learnt_cap {
                    self.reduce_db();
                    self.learnt_cap += self.learnt_cap / 10;
                }
                // Decide: assumptions first, then VSIDS.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty level so the
                            // index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(!a);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(l) => Some(l),
                    None => loop {
                        match self.heap_pop() {
                            None => break None,
                            Some(v) => {
                                if self.assigns[v.index()].is_undef() {
                                    break Some(v.lit(self.polarity[v.index()]));
                                }
                            }
                        }
                    },
                };
                match decision {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Decides satisfiability of the clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_limited(&[], &Budget::unlimited())
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// On [`SatResult::Unsat`], [`Solver::unsat_core`] holds a subset of
    /// the assumptions (negated) that is already contradictory.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_limited(assumptions, &Budget::unlimited())
    }

    /// Decides satisfiability under assumptions and resource limits.
    pub fn solve_limited(&mut self, assumptions: &[Lit], budget: &Budget) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.conflict.clear();
        self.cancel_until(0);
        let start_conflicts = self.stats.conflicts;
        let start_props = self.stats.propagations;
        let mut restart = 1u64;
        loop {
            if self.cancelled() {
                self.cancel_until(0);
                return SatResult::Unknown;
            }
            if let Some(mc) = budget.max_conflicts {
                if self.stats.conflicts - start_conflicts >= mc {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
            }
            if let Some(mp) = budget.max_propagations {
                if self.stats.propagations - start_props >= mp {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
            }
            let budget_here = luby(restart) * 100;
            match self.search(budget_here, assumptions) {
                SatResult::Unknown => {
                    self.stats.restarts += 1;
                    restart += 1;
                    // Distinguish a restart from an external cancellation.
                    if self.cancelled() {
                        return SatResult::Unknown;
                    }
                }
                SatResult::Sat => {
                    // Model stays on the trail; caller reads it, then we
                    // clean up lazily at the start of the next solve.
                    return SatResult::Sat;
                }
                SatResult::Unsat => {
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
            }
        }
    }

    /// True if the solver has already derived a top-level contradiction.
    pub fn is_ok(&self) -> bool {
        self.ok
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]
    use super::*;

    fn lits_of(solver: &mut Solver, n: usize) -> Vec<Var> {
        solver.new_vars(n)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits_of(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.lit_value(v[0].pos()).is_true() || s.lit_value(v[1].pos()).is_true());
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.pos()]);
        s.add_clause([v.neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([v.pos(), v.neg()]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits_of(&mut s, 5);
        for i in 0..4 {
            s.add_clause([v[i].neg(), v[i + 1].pos()]);
        }
        s.add_clause([v[0].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for x in &v {
            assert!(s.value(*x).is_true());
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires
        // real conflict analysis.
        let mut s = Solver::new();
        let mut x = [[Var(0); 2]; 3];
        #[allow(clippy::needless_range_loop)]
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause([x[p][0].pos(), x[p][1].pos()]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause([x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(m)).collect();
        for row in x.iter().take(n) {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    s.add_clause([x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn graph_coloring_sat() {
        // A 5-cycle is 3-colourable but not 2-colourable.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        for (colors, expect) in [(2usize, SatResult::Unsat), (3usize, SatResult::Sat)] {
            let mut s = Solver::new();
            let x: Vec<Vec<Var>> = (0..5).map(|_| s.new_vars(colors)).collect();
            for row in &x {
                s.add_clause(row.iter().map(|v| v.pos()));
                for c1 in 0..colors {
                    for c2 in (c1 + 1)..colors {
                        s.add_clause([row[c1].neg(), row[c2].neg()]);
                    }
                }
            }
            for &(a, b) in &edges {
                for c in 0..colors {
                    s.add_clause([x[a][c].neg(), x[b][c].neg()]);
                }
            }
            assert_eq!(s.solve(), expect, "colors={colors}");
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.neg(), b.pos()]);
        assert_eq!(s.solve_with_assumptions(&[a.pos()]), SatResult::Sat);
        assert!(s.value(b).is_true());
        assert_eq!(
            s.solve_with_assumptions(&[a.pos(), b.neg()]),
            SatResult::Unsat
        );
        // Solver remains usable and satisfiable without assumptions.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unsat_core_contains_culprits() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([a.neg(), b.neg()]);
        let r = s.solve_with_assumptions(&[a.pos(), b.pos(), c.pos()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        // The core mentions only a and b, never c.
        assert!(core.iter().all(|l| l.var() == a || l.var() == b));
    }

    #[test]
    fn incremental_blocking_enumeration() {
        // Enumerate all 4 models over two free variables.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.pos(), a.neg()]); // mention vars so they are decided
        s.add_clause([b.pos(), b.neg()]);
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 4, "more models than the space allows");
            let block: Vec<Lit> = [a, b]
                .iter()
                .map(|&v| {
                    if s.value(v).is_true() {
                        v.neg()
                    } else {
                        v.pos()
                    }
                })
                .collect();
            s.add_clause(block);
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let n = 9;
        let m = 8;
        let mut s = Solver::new();
        let x: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(m)).collect();
        for row in x.iter() {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    s.add_clause([x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        let r = s.solve_limited(&[], &Budget::conflicts(5));
        assert_eq!(r, SatResult::Unknown);
    }

    #[test]
    fn cancel_flag_stops_search() {
        let mut s = Solver::new();
        let flag = Arc::new(AtomicBool::new(true));
        s.set_cancel_flag(flag);
        let v = s.new_var();
        s.add_clause([v.pos()]);
        assert_eq!(s.solve(), SatResult::Unknown);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits_of(&mut s, 20);
        for i in 0..19 {
            s.add_clause([v[i].neg(), v[i + 1].pos()]);
        }
        s.add_clause([v[0].pos()]);
        s.solve();
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.pos(), v.pos(), v.pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(v).is_true());
    }

    #[test]
    fn vars_and_clauses_can_grow_after_a_solve() {
        // The incremental contract: new variables and clauses are valid
        // after Sat and after assumption-Unsat answers, and constrain
        // subsequent solves.
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Grow after Sat.
        let b = s.new_var();
        s.add_clause([a.neg(), b.pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(b).is_true());
        // Unsat under assumptions, then grow again.
        assert_eq!(s.solve_with_assumptions(&[b.neg()]), SatResult::Unsat);
        let c = s.new_var();
        s.add_clause([b.neg(), c.pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(c).is_true());
    }

    #[test]
    fn learnt_clauses_survive_assumption_solves() {
        // A pigeonhole sub-problem guarded by an assumption literal: the
        // first (Unsat) solve learns clauses, and the learnt database is
        // still there for the next call on the same instance.
        let n = 6;
        let m = 5;
        let mut s = Solver::new();
        let g = s.new_var();
        let x: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(m)).collect();
        for row in &x {
            let mut cl: Vec<Lit> = vec![g.neg()];
            cl.extend(row.iter().map(|v| v.pos()));
            s.add_clause(cl);
        }
        for h in 0..m {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    s.add_clause([x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[g.pos()]), SatResult::Unsat);
        let learnt_after_first = s.num_learnts();
        assert!(learnt_after_first > 0, "hard Unsat must learn clauses");
        // Without the guard the formula is Sat; the learnt clauses are
        // retained (they are consequences, so they stay sound).
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.num_learnts() >= learnt_after_first);
    }

    #[test]
    fn unsat_core_tracks_assumption_flips() {
        // Two independent guard groups; the core must name exactly the
        // guards responsible under each assumption set on one instance.
        let mut s = Solver::new();
        let g1 = s.new_var();
        let g2 = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([g1.neg(), a.pos()]);
        s.add_clause([g1.neg(), a.neg()]); // g1 alone is contradictory
        s.add_clause([g2.neg(), b.pos()]);
        assert_eq!(
            s.solve_with_assumptions(&[g1.pos(), g2.pos()]),
            SatResult::Unsat
        );
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(core.iter().all(|l| l.var() == g1), "core={core:?}");
        // Flip to the innocent guard only: satisfiable.
        assert_eq!(s.solve_with_assumptions(&[g2.pos()]), SatResult::Sat);
        assert!(s.value(b).is_true());
        // Back to the guilty guard: Unsat again with the same culprit.
        assert_eq!(s.solve_with_assumptions(&[g1.pos()]), SatResult::Unsat);
        assert!(s.unsat_core().iter().all(|l| l.var() == g1));
    }

    #[test]
    fn random_3sat_planted_solutions() {
        // Planted-solution random 3-SAT: always satisfiable, solver must
        // find some model.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..10 {
            let nvars = 50;
            let nclauses = 200;
            let mut s = Solver::new();
            let vars = s.new_vars(nvars);
            let planted: Vec<bool> = (0..nvars).map(|_| next() & 1 == 1).collect();
            for _ in 0..nclauses {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let vi = (next() % nvars as u64) as usize;
                    let sign = next() & 1 == 1;
                    lits.push(vars[vi].lit(sign));
                }
                // Force at least one literal to agree with the planted
                // assignment.
                let vi = (next() % nvars as u64) as usize;
                lits.push(vars[vi].lit(planted[vi]));
                s.add_clause(lits);
            }
            assert_eq!(s.solve(), SatResult::Sat, "trial {trial}");
            // Verify the model satisfies every clause by re-checking.
            let model = s.model();
            assert_eq!(model.len(), nvars);
        }
    }
}
