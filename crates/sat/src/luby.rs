//! The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...) used to schedule
//! CDCL restarts.

/// Returns the `i`-th element (1-based) of the Luby sequence.
///
/// The sequence is the classic universal restart strategy of Luby, Sinclair
/// and Zuckerman; multiplied by a base conflict budget it gives the number
/// of conflicts allowed before the next restart.
///
/// ```
/// use cgra_sat::luby;
/// let prefix: Vec<u64> = (1..=9).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1]);
/// ```
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1, "luby sequence is 1-based");
    // Find the subsequence [2^k - 1 elements] that contains position i.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let mut i = i;
    #[allow(clippy::redundant_locals)]
    let mut k = k;
    while (1u64 << k) - 1 != i {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

#[cfg(test)]
mod tests {
    use super::luby;

    #[test]
    fn first_fifteen_terms() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "term {}", i + 1);
        }
    }

    #[test]
    fn powers_appear_at_block_ends() {
        // Position 2^k - 1 holds 2^(k-1).
        for k in 1..16u64 {
            assert_eq!(luby((1 << k) - 1), 1 << (k - 1));
        }
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 1..2000u64 {
            let v = luby(i);
            assert!(v.is_power_of_two());
        }
    }
}
