//! DIMACS CNF parsing and printing.
//!
//! Used by the test-suite to exercise the solver on standard instances
//! and to dump generated formulas for external debugging.

use std::fmt::Write as _;

use crate::types::{Lit, Var};
use crate::Solver;

/// A parsed CNF formula: a variable count and a list of clauses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (variables are 1-based in DIMACS, 0-based here).
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

/// An error produced while parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

impl Cnf {
    /// Parses DIMACS CNF text.
    ///
    /// Comment lines (`c ...`) and the problem line (`p cnf V C`) are
    /// accepted; clauses are zero-terminated integer lists and may span
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed integers or literals
    /// referencing variables beyond the declared count.
    ///
    /// ```
    /// use cgra_sat::dimacs::Cnf;
    /// let cnf = Cnf::parse("p cnf 2 2\n1 -2 0\n2 0\n")?;
    /// assert_eq!(cnf.num_vars, 2);
    /// assert_eq!(cnf.clauses.len(), 2);
    /// # Ok::<(), cgra_sat::dimacs::ParseDimacsError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        let mut declared_vars: Option<usize> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: format!("malformed problem line: {line:?}"),
                    });
                }
                let nv: usize = parts[1].parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad variable count {:?}", parts[1]),
                })?;
                declared_vars = Some(nv);
                cnf.num_vars = nv;
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad literal {tok:?}"),
                })?;
                if n == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let vi = n.unsigned_abs() as usize - 1;
                    if let Some(nv) = declared_vars {
                        if vi >= nv {
                            return Err(ParseDimacsError {
                                line: lineno + 1,
                                message: format!("literal {n} exceeds declared {nv} variables"),
                            });
                        }
                    }
                    cnf.num_vars = cnf.num_vars.max(vi + 1);
                    current.push(Var::from_index(vi).lit(n > 0));
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }

    /// Renders the formula as DIMACS CNF text.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for l in clause {
                let n = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Loads the formula into a fresh [`Solver`].
    pub fn into_solver(&self) -> Solver {
        let mut solver = Solver::new();
        solver.new_vars(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Checks a model (indexed by variable) against every clause.
    pub fn is_satisfied_by(&self, model: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|l| model.get(l.var().index()).copied().unwrap_or(false) == l.is_positive())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatResult;

    #[test]
    fn parse_roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let rendered = cnf.to_dimacs();
        let cnf2 = Cnf::parse(&rendered).unwrap();
        assert_eq!(cnf, cnf2);
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = Cnf::parse("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn parse_rejects_overflow_literal() {
        let err = Cnf::parse("p cnf 2 1\n5 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cnf::parse("p cnf 2 1\nfoo 0\n").is_err());
        assert!(Cnf::parse("p dnf 2 1\n1 0\n").is_err());
    }

    #[test]
    fn solve_parsed_instance() {
        let cnf = Cnf::parse("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n").unwrap();
        let mut solver = cnf.into_solver();
        assert_eq!(solver.solve(), SatResult::Sat);
        assert!(cnf.is_satisfied_by(&solver.model()));
    }

    #[test]
    fn model_checker_rejects_bad_model() {
        let cnf = Cnf::parse("p cnf 2 1\n1 2 0\n").unwrap();
        assert!(!cnf.is_satisfied_by(&[false, false]));
        assert!(cnf.is_satisfied_by(&[true, false]));
    }
}
