//! Core identifier types of the SAT solver: variables, literals and the
//! three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
///
/// Variables are created with [`crate::Solver::new_var`] and are valid only
/// for the solver that created them.
///
/// ```
/// use cgra_sat::Solver;
/// let mut solver = Solver::new();
/// let v = solver.new_var();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw dense index.
    ///
    /// Mostly useful for tests and for decoding external formats; normal
    /// code should use [`crate::Solver::new_var`].
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)] // named after the MiniSat API; `!lit` negates a Lit
    pub fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign.
    ///
    /// `sign == true` yields the positive literal.
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | negated` so that the two literals of a variable
/// are adjacent, which lets the solver index watch lists directly by
/// literal code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal, `false` for a negated one.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense code of this literal (`2 * var` or `2 * var + 1`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment: true, false or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a Rust `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal with this variable value: negation flips
    /// `True`/`False` and leaves `Undef` unchanged.
    pub fn under_sign(self, positive: bool) -> Self {
        if positive {
            self
        } else {
            match self {
                LBool::True => LBool::False,
                LBool::False => LBool::True,
                LBool::Undef => LBool::Undef,
            }
        }
    }

    /// `true` iff the value is `True`.
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// `true` iff the value is `False`.
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// `true` iff the value is `Undef`.
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }
}

/// Outcome of a [`crate::Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; query it with
    /// [`crate::Solver::value`] or [`crate::Solver::model`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The search was interrupted by a budget or a cancellation flag
    /// before reaching an answer.
    Unknown,
}

impl SatResult {
    /// `true` iff the result is [`SatResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SatResult::Sat
    }

    /// `true` iff the result is [`SatResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SatResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(Lit::from_code(v.pos().code()), v.pos());
    }

    #[test]
    fn lit_sign_constructor() {
        let v = Var::from_index(3);
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn lbool_under_sign() {
        assert_eq!(LBool::True.under_sign(false), LBool::False);
        assert_eq!(LBool::False.under_sign(false), LBool::True);
        assert_eq!(LBool::Undef.under_sign(false), LBool::Undef);
        assert_eq!(LBool::True.under_sign(true), LBool::True);
    }

    #[test]
    fn lbool_predicates() {
        assert!(LBool::True.is_true());
        assert!(LBool::False.is_false());
        assert!(LBool::Undef.is_undef());
        assert!(!LBool::Undef.is_true());
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(2);
        assert_eq!(format!("{}", v.pos()), "v2");
        assert_eq!(format!("{}", v.neg()), "!v2");
        assert_eq!(format!("{v}"), "v2");
    }
}
