//! The backtracking monomorphism search.

use crate::{BitSet, Pattern, Target};

/// Limits applied to one search run.
#[derive(Clone, Debug, Default)]
pub struct SearchConfig {
    /// Maximum number of extension attempts (candidate placements tried)
    /// before giving up with [`MonoOutcome::LimitReached`]. `None` means
    /// unlimited.
    pub max_steps: Option<u64>,
}

impl SearchConfig {
    /// Unlimited search.
    pub fn unlimited() -> Self {
        SearchConfig::default()
    }

    /// A search budget of `n` extension attempts.
    pub fn steps(n: u64) -> Self {
        SearchConfig { max_steps: Some(n) }
    }
}

/// Result of a monomorphism search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonoOutcome {
    /// A monomorphism was found: `map[u]` is the target vertex of
    /// pattern vertex `u`.
    Found(Vec<usize>),
    /// The full space was explored; no monomorphism exists.
    Exhausted,
    /// The step budget ran out first.
    LimitReached,
}

impl MonoOutcome {
    /// Extracts the mapping, if found.
    pub fn into_map(self) -> Option<Vec<usize>> {
        match self {
            MonoOutcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

/// Work counters of a search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonoStats {
    /// Candidate placements attempted.
    pub steps: u64,
    /// Backtracks taken.
    pub backtracks: u64,
    /// Solutions reported (for enumeration runs).
    pub solutions: u64,
}

/// A reusable monomorphism searcher over a pattern/target pair.
pub struct Searcher<'a> {
    pattern: &'a Pattern,
    target: &'a Target,
    config: SearchConfig,
    /// Matching order of pattern vertices.
    order: Vec<usize>,
    /// Base candidate sets (label + degree compatible) per pattern
    /// vertex.
    base: Vec<BitSet>,
    stats: MonoStats,
}

impl<'a> Searcher<'a> {
    /// Prepares a search with default (unlimited) configuration.
    pub fn new(pattern: &'a Pattern, target: &'a Target) -> Self {
        Searcher::with_config(pattern, target, SearchConfig::unlimited())
    }

    /// Prepares a search with explicit limits.
    pub fn with_config(pattern: &'a Pattern, target: &'a Target, config: SearchConfig) -> Self {
        let np = pattern.num_vertices();
        let nt = target.num_vertices();
        // Base candidates: label equality + degree dominance.
        let mut base = Vec::with_capacity(np);
        for u in 0..np {
            let mut s = BitSet::new(nt);
            for t in 0..nt {
                if target.label(t) == pattern.label(u) && target.degree(t) >= pattern.degree(u) {
                    s.insert(t);
                }
            }
            base.push(s);
        }
        // Greatest-constraint-first ordering: start at the most
        // constrained vertex (fewest base candidates, then highest
        // degree); grow by maximising already-ordered neighbours.
        let mut order: Vec<usize> = Vec::with_capacity(np);
        let mut placed = vec![false; np];
        while order.len() < np {
            let next = (0..np)
                .filter(|&u| !placed[u])
                .min_by_key(|&u| {
                    let mapped_nbrs = pattern.neighbors(u).iter().filter(|&&w| placed[w]).count();
                    // More mapped neighbours first, then fewer
                    // candidates, then higher degree.
                    (
                        usize::MAX - mapped_nbrs,
                        base[u].len(),
                        usize::MAX - pattern.degree(u),
                    )
                })
                .expect("unplaced vertex exists");
            placed[next] = true;
            order.push(next);
        }
        Searcher {
            pattern,
            target,
            config,
            order,
            base,
            stats: MonoStats::default(),
        }
    }

    /// Counters from the most recent run.
    pub fn stats(&self) -> MonoStats {
        self.stats
    }

    /// Runs the search for the first monomorphism.
    pub fn run(&mut self) -> MonoOutcome {
        let mut found = None;
        let outcome = self.enumerate(&mut |map| {
            found = Some(map.to_vec());
            true // stop at the first
        });
        match (found, outcome) {
            (Some(m), _) => MonoOutcome::Found(m),
            (None, false) => MonoOutcome::LimitReached,
            (None, true) => MonoOutcome::Exhausted,
        }
    }

    /// Finds up to `limit` monomorphisms.
    pub fn find_all(&mut self, limit: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        self.enumerate(&mut |map| {
            out.push(map.to_vec());
            out.len() >= limit
        });
        out
    }

    /// Core enumeration. Calls `on_solution` for each monomorphism; the
    /// callback returns `true` to stop. Returns `true` if the space was
    /// exhausted (or the callback stopped the search), `false` when the
    /// step budget ran out.
    fn enumerate(&mut self, on_solution: &mut dyn FnMut(&[usize]) -> bool) -> bool {
        self.stats = MonoStats::default();
        let np = self.pattern.num_vertices();
        let nt = self.target.num_vertices();
        if np == 0 {
            self.stats.solutions = 1;
            on_solution(&[]);
            return true;
        }
        if np > nt {
            return true; // injectivity is impossible; trivially exhausted
        }
        let mut map = vec![usize::MAX; np];
        let mut used = BitSet::new(nt);
        let order = self.order.clone();
        let mut scratch = BitSet::new(nt);

        // Iterative depth-first search with per-depth candidate lists.
        let mut cand_stack: Vec<Vec<usize>> = Vec::with_capacity(np);
        let mut cursor: Vec<usize> = Vec::with_capacity(np);
        cand_stack.push(self.candidates(order[0], &map, &used, &mut scratch));
        cursor.push(0);

        loop {
            let depth = cand_stack.len() - 1;
            let u = order[depth];
            let ci = cursor[depth];
            if ci >= cand_stack[depth].len() {
                // Exhausted this depth: backtrack.
                cand_stack.pop();
                cursor.pop();
                if depth == 0 {
                    return true;
                }
                self.stats.backtracks += 1;
                let prev_u = order[depth - 1];
                used.remove(map[prev_u]);
                map[prev_u] = usize::MAX;
                continue;
            }
            let t = cand_stack[depth][ci];
            cursor[depth] += 1;
            self.stats.steps += 1;
            if let Some(max) = self.config.max_steps {
                if self.stats.steps > max {
                    return false;
                }
            }
            map[u] = t;
            used.insert(t);
            if depth + 1 == np {
                self.stats.solutions += 1;
                if on_solution(&map) {
                    return true;
                }
                used.remove(t);
                map[u] = usize::MAX;
                continue;
            }
            let next_cands = self.candidates(order[depth + 1], &map, &used, &mut scratch);
            if next_cands.is_empty() {
                self.stats.backtracks += 1;
                used.remove(t);
                map[u] = usize::MAX;
                continue;
            }
            cand_stack.push(next_cands);
            cursor.push(0);
        }
    }

    /// Candidate targets for pattern vertex `u` under the partial map:
    /// base set ∩ neighbourhoods of mapped neighbours, minus used.
    fn candidates(
        &self,
        u: usize,
        map: &[usize],
        used: &BitSet,
        scratch: &mut BitSet,
    ) -> Vec<usize> {
        scratch.copy_from(&self.base[u]);
        scratch.subtract(used);
        for &w in self.pattern.neighbors(u) {
            if map[w] != usize::MAX {
                scratch.intersect_with(self.target.row(map[w]));
            }
        }
        scratch.iter().collect()
    }
}

/// Finds one monomorphism from `pattern` into `target`, if any.
///
/// Convenience wrapper over [`Searcher`]; see the crate-level example.
pub fn find_monomorphism(pattern: &Pattern, target: &Target) -> Option<Vec<usize>> {
    Searcher::new(pattern, target).run().into_map()
}

/// Counts all monomorphisms (up to `limit`, to bound the work).
pub fn count_monomorphisms(pattern: &Pattern, target: &Target, limit: usize) -> usize {
    Searcher::new(pattern, target).find_all(limit).len()
}

/// Checks the three monomorphism properties of the paper (§IV-A) for a
/// candidate map. Exposed for tests and for `Mapping::validate` in the
/// core crate.
pub fn is_monomorphism(pattern: &Pattern, target: &Target, map: &[usize]) -> bool {
    if map.len() != pattern.num_vertices() {
        return false;
    }
    // mono1: injectivity.
    let mut seen = BitSet::new(target.num_vertices());
    for &t in map {
        if t >= target.num_vertices() || seen.contains(t) {
            return false;
        }
        seen.insert(t);
    }
    // mono2: label preservation.
    for (u, &t) in map.iter().enumerate() {
        if pattern.label(u) != target.label(t) {
            return false;
        }
    }
    // mono3: edge preservation.
    for u in 0..pattern.num_vertices() {
        for &w in pattern.neighbors(u) {
            if u < w && !target.adjacent(map[u], map[w]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize, label: u32) -> Target {
        let mut t = Target::new(vec![label; n]);
        for a in 0..n {
            for b in (a + 1)..n {
                t.add_edge(a, b);
            }
        }
        t
    }

    #[test]
    fn triangle_into_k4_counts() {
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1), (1, 2), (2, 0)]);
        let t = clique(4, 0);
        // 4 choose 3 vertex sets × 3! orientations = 24 monomorphisms.
        assert_eq!(count_monomorphisms(&p, &t, 1000), 24);
    }

    #[test]
    fn found_map_is_a_monomorphism() {
        let p = Pattern::new(vec![0, 1, 0], vec![(0, 1), (1, 2)]);
        let mut t = Target::new(vec![0, 1, 0, 1, 0]);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            t.add_edge(a, b);
        }
        let m = find_monomorphism(&p, &t).expect("path embeds");
        assert!(is_monomorphism(&p, &t, &m));
    }

    #[test]
    fn labels_block_embedding() {
        let p = Pattern::new(vec![7], vec![]);
        let t = clique(3, 0);
        assert_eq!(find_monomorphism(&p, &t), None);
        assert_eq!(Searcher::new(&p, &t).run(), MonoOutcome::Exhausted);
    }

    #[test]
    fn injectivity_blocks_oversized_pattern() {
        let p = Pattern::new(vec![0, 0, 0], vec![]);
        let t = clique(2, 0);
        assert_eq!(find_monomorphism(&p, &t), None);
    }

    #[test]
    fn non_induced_embedding_allowed() {
        // Pattern: path a-b-c (no edge a-c). Target: triangle. A
        // monomorphism (unlike induced isomorphism) may map a,c to
        // adjacent vertices.
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1), (1, 2)]);
        let t = clique(3, 0);
        assert!(find_monomorphism(&p, &t).is_some());
    }

    #[test]
    fn square_does_not_embed_in_tree() {
        let p = Pattern::new(vec![0; 4], vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut t = Target::new(vec![0; 6]);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)] {
            t.add_edge(a, b);
        }
        assert_eq!(Searcher::new(&p, &t).run(), MonoOutcome::Exhausted);
    }

    #[test]
    fn empty_pattern_trivially_embeds() {
        let p = Pattern::new(vec![], vec![]);
        let t = clique(2, 0);
        assert_eq!(find_monomorphism(&p, &t), Some(vec![]));
    }

    #[test]
    fn disconnected_pattern_components() {
        let p = Pattern::new(vec![0, 0, 1, 1], vec![(0, 1), (2, 3)]);
        let mut t = Target::new(vec![0, 0, 1, 1, 0]);
        t.add_edge(0, 1);
        t.add_edge(2, 3);
        let m = find_monomorphism(&p, &t).expect("both components embed");
        assert!(is_monomorphism(&p, &t, &m));
    }

    #[test]
    fn step_limit_reports_limit() {
        // A hard instance: embed a 6-clique into a large sparse graph
        // where it does not exist, with a tiny budget.
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let p = Pattern::new(vec![0; 6], edges);
        let mut t = Target::new(vec![0; 40]);
        for i in 0..39 {
            t.add_edge(i, i + 1);
            if i + 2 < 40 {
                t.add_edge(i, i + 2);
            }
            if i + 3 < 40 {
                t.add_edge(i, i + 3);
            }
            if i + 4 < 40 {
                t.add_edge(i, i + 4);
            }
            if i + 5 < 40 {
                t.add_edge(i, i + 5);
            }
        }
        let mut s = Searcher::with_config(&p, &t, SearchConfig::steps(3));
        assert_eq!(s.run(), MonoOutcome::LimitReached);
        assert!(s.stats().steps >= 3);
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let p = Pattern::new(vec![0, 0], vec![(0, 1)]);
        let t = clique(4, 0);
        let all = Searcher::new(&p, &t).find_all(1000);
        // Ordered pairs of distinct vertices: 4 × 3 = 12.
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
        for m in &all {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    /// Brute-force cross-check on pseudo-random small instances.
    #[test]
    fn matches_brute_force_on_random_graphs() {
        fn brute_count(p: &Pattern, t: &Target) -> usize {
            let np = p.num_vertices();
            let nt = t.num_vertices();
            let mut count = 0;
            let mut map = vec![usize::MAX; np];
            fn rec(
                p: &Pattern,
                t: &Target,
                map: &mut Vec<usize>,
                depth: usize,
                count: &mut usize,
                nt: usize,
            ) {
                if depth == map.len() {
                    *count += 1;
                    return;
                }
                'outer: for cand in 0..nt {
                    if map[..depth].contains(&cand) {
                        continue;
                    }
                    if t.label(cand) != p.label(depth) {
                        continue;
                    }
                    for &w in p.neighbors(depth) {
                        if w < depth && !t.adjacent(map[w], cand) {
                            continue 'outer;
                        }
                    }
                    map[depth] = cand;
                    rec(p, t, map, depth + 1, count, nt);
                    map[depth] = usize::MAX;
                }
            }
            rec(p, t, &mut map, 0, &mut count, nt);
            count
        }

        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let np = 2 + (next() % 4) as usize; // 2..=5
            let nt = 4 + (next() % 5) as usize; // 4..=8
            let nlabels = 1 + (next() % 3) as u32;
            let plabels: Vec<u32> = (0..np).map(|_| (next() % nlabels as u64) as u32).collect();
            let tlabels: Vec<u32> = (0..nt).map(|_| (next() % nlabels as u64) as u32).collect();
            let mut pedges = Vec::new();
            for a in 0..np {
                for b in (a + 1)..np {
                    if next() % 2 == 0 {
                        pedges.push((a, b));
                    }
                }
            }
            let p = Pattern::new(plabels, pedges);
            let mut t = Target::new(tlabels);
            for a in 0..nt {
                for b in (a + 1)..nt {
                    if next() % 2 == 0 {
                        t.add_edge(a, b);
                    }
                }
            }
            let fast = count_monomorphisms(&p, &t, 1_000_000);
            let slow = brute_count(&p, &t);
            assert_eq!(fast, slow, "trial {trial}: np={np} nt={nt}");
        }
    }
}
