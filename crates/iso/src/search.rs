//! The backtracking monomorphism search.

use std::time::Instant;

use cgra_base::CancelFlag;

use crate::{BitSet, Pattern, Target};

/// How many search steps pass between deadline/cancellation polls.
///
/// An atomic load is cheap but `Instant::now` is not; polling every
/// `2^10` extension attempts keeps the overhead unmeasurable while
/// bounding the reaction latency to well under a millisecond of search
/// work.
const POLL_MASK: u64 = (1 << 10) - 1;

/// Limits applied to one search run.
#[derive(Clone, Debug, Default)]
pub struct SearchConfig {
    /// Maximum number of extension attempts (candidate placements tried)
    /// before giving up with [`MonoOutcome::LimitReached`]. `None` means
    /// unlimited.
    pub max_steps: Option<u64>,
    /// Cooperative cancellation flag, polled inside the DFS loop; a
    /// raised flag stops the search with [`MonoOutcome::Cancelled`].
    pub cancel: Option<CancelFlag>,
    /// Wall-clock deadline, polled inside the DFS loop; past it the
    /// search stops with [`MonoOutcome::Cancelled`].
    pub deadline: Option<Instant>,
}

impl SearchConfig {
    /// Unlimited search.
    pub fn unlimited() -> Self {
        SearchConfig::default()
    }

    /// A search budget of `n` extension attempts.
    pub fn steps(n: u64) -> Self {
        SearchConfig {
            max_steps: Some(n),
            ..SearchConfig::default()
        }
    }

    /// Returns the configuration with a cooperative cancellation flag.
    pub fn with_cancel_flag(mut self, cancel: CancelFlag) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Returns the configuration with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True when the flag is raised or the deadline has passed.
    fn interrupted(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Result of a monomorphism search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonoOutcome {
    /// A monomorphism was found: `map[u]` is the target vertex of
    /// pattern vertex `u`.
    Found(Vec<usize>),
    /// The full space was explored; no monomorphism exists.
    Exhausted,
    /// The step budget ran out first.
    LimitReached,
    /// The cancellation flag was raised (or the deadline passed) before
    /// the search concluded.
    Cancelled,
}

impl MonoOutcome {
    /// Extracts the mapping, if found.
    pub fn into_map(self) -> Option<Vec<usize>> {
        match self {
            MonoOutcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

/// Work counters of a search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonoStats {
    /// Candidate placements attempted.
    pub steps: u64,
    /// Backtracks taken.
    pub backtracks: u64,
    /// Solutions reported (for enumeration runs).
    pub solutions: u64,
}

/// A reusable monomorphism searcher over a pattern/target pair.
///
/// All working storage (the per-depth candidate domains, the partial
/// map, the used-vertex set) is allocated once at construction and
/// reused across [`Searcher::run`] calls: the DFS loop itself performs
/// no heap allocation.
pub struct Searcher<'a> {
    pattern: &'a Pattern,
    target: &'a Target,
    config: SearchConfig,
    /// Matching order of pattern vertices.
    order: Vec<usize>,
    /// Base candidate sets (label + degree compatible) per pattern
    /// vertex.
    base: Vec<BitSet>,
    /// Per-depth candidate domains of the DFS (reused across runs).
    domains: Vec<BitSet>,
    /// Per-depth scan cursors into `domains`.
    cursors: Vec<usize>,
    /// Partial map under construction (`usize::MAX` = unmapped).
    map: Vec<usize>,
    /// Target vertices used by the partial map.
    used: BitSet,
    stats: MonoStats,
}

/// Why the enumeration loop stopped.
enum EnumStop {
    /// Space exhausted, or the solution callback asked to stop.
    Exhausted,
    /// The step budget ran out.
    LimitReached,
    /// The cancellation flag/deadline fired.
    Cancelled,
}

impl<'a> Searcher<'a> {
    /// Prepares a search with default (unlimited) configuration.
    pub fn new(pattern: &'a Pattern, target: &'a Target) -> Self {
        Searcher::with_config(pattern, target, SearchConfig::unlimited())
    }

    /// Prepares a search with explicit limits.
    pub fn with_config(pattern: &'a Pattern, target: &'a Target, config: SearchConfig) -> Self {
        let np = pattern.num_vertices();
        let nt = target.num_vertices();
        // Base candidates: label equality + degree dominance +
        // requirement/capability compatibility. The compatibility test
        // only ever *removes* candidates, so constrained instances
        // start from smaller domains than their unconstrained
        // counterparts (and unconstrained instances are unchanged:
        // a requirement of 0 passes every capability mask).
        let mut base = Vec::with_capacity(np);
        for u in 0..np {
            let req = pattern.requirement(u);
            let mut s = BitSet::new(nt);
            for t in 0..nt {
                if target.label(t) == pattern.label(u)
                    && target.degree(t) >= pattern.degree(u)
                    && target.capability(t) & req == req
                {
                    s.insert(t);
                }
            }
            base.push(s);
        }
        // Greatest-constraint-first ordering: start at the most
        // constrained vertex (fewest base candidates, then highest
        // degree); grow by maximising already-ordered neighbours.
        let mut order: Vec<usize> = Vec::with_capacity(np);
        let mut placed = vec![false; np];
        while order.len() < np {
            let next = (0..np)
                .filter(|&u| !placed[u])
                .min_by_key(|&u| {
                    let mapped_nbrs = pattern.neighbors(u).iter().filter(|&&w| placed[w]).count();
                    // More mapped neighbours first, then fewer
                    // candidates, then higher degree.
                    (
                        usize::MAX - mapped_nbrs,
                        base[u].len(),
                        usize::MAX - pattern.degree(u),
                    )
                })
                .expect("unplaced vertex exists");
            placed[next] = true;
            order.push(next);
        }
        Searcher {
            pattern,
            target,
            config,
            order,
            base,
            domains: (0..np).map(|_| BitSet::new(nt)).collect(),
            cursors: vec![0; np],
            map: vec![usize::MAX; np],
            used: BitSet::new(nt),
            stats: MonoStats::default(),
        }
    }

    /// Replaces the search limits (the prepared ordering and candidate
    /// sets are kept, so one searcher can serve several attempts with
    /// different budgets).
    pub fn set_config(&mut self, config: SearchConfig) {
        self.config = config;
    }

    /// Counters from the most recent run.
    pub fn stats(&self) -> MonoStats {
        self.stats
    }

    /// Runs the search for the first monomorphism.
    pub fn run(&mut self) -> MonoOutcome {
        let mut found = None;
        let outcome = self.enumerate(&mut |map| {
            found = Some(map.to_vec());
            true // stop at the first
        });
        match (found, outcome) {
            (Some(m), _) => MonoOutcome::Found(m),
            (None, EnumStop::LimitReached) => MonoOutcome::LimitReached,
            (None, EnumStop::Exhausted) => MonoOutcome::Exhausted,
            (None, EnumStop::Cancelled) => MonoOutcome::Cancelled,
        }
    }

    /// Finds up to `limit` monomorphisms.
    pub fn find_all(&mut self, limit: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        self.enumerate(&mut |map| {
            out.push(map.to_vec());
            out.len() >= limit
        });
        out
    }

    /// Core enumeration. Calls `on_solution` for each monomorphism; the
    /// callback returns `true` to stop.
    ///
    /// Iterative depth-first search over a preallocated stack of bit-set
    /// candidate domains with per-depth cursors: no allocation happens
    /// inside the loop, and the cancellation flag / deadline is polled
    /// every [`POLL_MASK`]`+1` steps.
    fn enumerate(&mut self, on_solution: &mut dyn FnMut(&[usize]) -> bool) -> EnumStop {
        self.stats = MonoStats::default();
        let pattern = self.pattern;
        let target = self.target;
        let np = pattern.num_vertices();
        let nt = target.num_vertices();
        if np == 0 {
            self.stats.solutions = 1;
            on_solution(&[]);
            return EnumStop::Exhausted;
        }
        if np > nt {
            return EnumStop::Exhausted; // injectivity is impossible
        }
        if self.config.interrupted() {
            return EnumStop::Cancelled;
        }
        for v in &mut self.map {
            *v = usize::MAX;
        }
        self.used.clear();

        let mut depth = 0usize;
        if !Self::fill_domain(
            &mut self.domains[0],
            &self.base[self.order[0]],
            pattern,
            target,
            self.order[0],
            &self.map,
            &self.used,
        ) {
            return EnumStop::Exhausted;
        }
        self.cursors[0] = 0;

        loop {
            let u = self.order[depth];
            let Some(t) = self.domains[depth].next_member(self.cursors[depth]) else {
                // Domain exhausted at this depth: backtrack.
                if depth == 0 {
                    return EnumStop::Exhausted;
                }
                depth -= 1;
                self.stats.backtracks += 1;
                let prev_u = self.order[depth];
                self.used.remove(self.map[prev_u]);
                self.map[prev_u] = usize::MAX;
                continue;
            };
            self.cursors[depth] = t + 1;
            self.stats.steps += 1;
            if let Some(max) = self.config.max_steps {
                if self.stats.steps > max {
                    return EnumStop::LimitReached;
                }
            }
            if self.stats.steps & POLL_MASK == 0 && self.config.interrupted() {
                return EnumStop::Cancelled;
            }
            self.map[u] = t;
            self.used.insert(t);
            if depth + 1 == np {
                self.stats.solutions += 1;
                if on_solution(&self.map) {
                    return EnumStop::Exhausted;
                }
                self.used.remove(t);
                self.map[u] = usize::MAX;
                continue;
            }
            let next_u = self.order[depth + 1];
            let viable = Self::fill_domain(
                &mut self.domains[depth + 1],
                &self.base[next_u],
                pattern,
                target,
                next_u,
                &self.map,
                &self.used,
            );
            if !viable {
                self.stats.backtracks += 1;
                self.used.remove(t);
                self.map[u] = usize::MAX;
                continue;
            }
            depth += 1;
            self.cursors[depth] = 0;
        }
    }

    /// Computes into `dom` the candidate targets for pattern vertex `u`
    /// under the partial map: base set ∩ neighbourhoods of mapped
    /// neighbours, minus used vertices. Returns `false` when the
    /// resulting domain is empty, so the caller backtracks without a
    /// separate occupancy scan.
    ///
    /// The fused [`BitSet::assign_difference`] / [`BitSet::intersect_any`]
    /// passes track occupancy bitwise alongside the stores; a domain
    /// that empties mid-way skips the remaining row intersections
    /// (empty is absorbing).
    #[allow(clippy::too_many_arguments)]
    fn fill_domain(
        dom: &mut BitSet,
        base: &BitSet,
        pattern: &Pattern,
        target: &Target,
        u: usize,
        map: &[usize],
        used: &BitSet,
    ) -> bool {
        let mut any = dom.assign_difference(base, used);
        for &w in pattern.neighbors(u) {
            if any && map[w] != usize::MAX {
                any = dom.intersect_any(target.row(map[w]));
            }
        }
        any
    }
}

/// Finds one monomorphism from `pattern` into `target`, if any.
///
/// Convenience wrapper over [`Searcher`]; see the crate-level example.
pub fn find_monomorphism(pattern: &Pattern, target: &Target) -> Option<Vec<usize>> {
    Searcher::new(pattern, target).run().into_map()
}

/// Counts all monomorphisms (up to `limit`, to bound the work).
pub fn count_monomorphisms(pattern: &Pattern, target: &Target, limit: usize) -> usize {
    Searcher::new(pattern, target).find_all(limit).len()
}

/// Checks the three monomorphism properties of the paper (§IV-A) for a
/// candidate map. Exposed for tests and for `Mapping::validate` in the
/// core crate.
pub fn is_monomorphism(pattern: &Pattern, target: &Target, map: &[usize]) -> bool {
    if map.len() != pattern.num_vertices() {
        return false;
    }
    // mono1: injectivity.
    let mut seen = BitSet::new(target.num_vertices());
    for &t in map {
        if t >= target.num_vertices() || seen.contains(t) {
            return false;
        }
        seen.insert(t);
    }
    // mono2: label preservation, plus requirement/capability
    // compatibility when the graphs carry masks.
    for (u, &t) in map.iter().enumerate() {
        if pattern.label(u) != target.label(t) {
            return false;
        }
        let req = pattern.requirement(u);
        if target.capability(t) & req != req {
            return false;
        }
    }
    // mono3: edge preservation.
    for u in 0..pattern.num_vertices() {
        for &w in pattern.neighbors(u) {
            if u < w && !target.adjacent(map[u], map[w]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize, label: u32) -> Target {
        let mut t = Target::new(vec![label; n]);
        for a in 0..n {
            for b in (a + 1)..n {
                t.add_edge(a, b);
            }
        }
        t
    }

    #[test]
    fn triangle_into_k4_counts() {
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1), (1, 2), (2, 0)]);
        let t = clique(4, 0);
        // 4 choose 3 vertex sets × 3! orientations = 24 monomorphisms.
        assert_eq!(count_monomorphisms(&p, &t, 1000), 24);
    }

    #[test]
    fn found_map_is_a_monomorphism() {
        let p = Pattern::new(vec![0, 1, 0], vec![(0, 1), (1, 2)]);
        let mut t = Target::new(vec![0, 1, 0, 1, 0]);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            t.add_edge(a, b);
        }
        let m = find_monomorphism(&p, &t).expect("path embeds");
        assert!(is_monomorphism(&p, &t, &m));
    }

    #[test]
    fn labels_block_embedding() {
        let p = Pattern::new(vec![7], vec![]);
        let t = clique(3, 0);
        assert_eq!(find_monomorphism(&p, &t), None);
        assert_eq!(Searcher::new(&p, &t).run(), MonoOutcome::Exhausted);
    }

    #[test]
    fn injectivity_blocks_oversized_pattern() {
        let p = Pattern::new(vec![0, 0, 0], vec![]);
        let t = clique(2, 0);
        assert_eq!(find_monomorphism(&p, &t), None);
    }

    #[test]
    fn non_induced_embedding_allowed() {
        // Pattern: path a-b-c (no edge a-c). Target: triangle. A
        // monomorphism (unlike induced isomorphism) may map a,c to
        // adjacent vertices.
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1), (1, 2)]);
        let t = clique(3, 0);
        assert!(find_monomorphism(&p, &t).is_some());
    }

    #[test]
    fn square_does_not_embed_in_tree() {
        let p = Pattern::new(vec![0; 4], vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut t = Target::new(vec![0; 6]);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)] {
            t.add_edge(a, b);
        }
        assert_eq!(Searcher::new(&p, &t).run(), MonoOutcome::Exhausted);
    }

    #[test]
    fn empty_pattern_trivially_embeds() {
        let p = Pattern::new(vec![], vec![]);
        let t = clique(2, 0);
        assert_eq!(find_monomorphism(&p, &t), Some(vec![]));
    }

    #[test]
    fn disconnected_pattern_components() {
        let p = Pattern::new(vec![0, 0, 1, 1], vec![(0, 1), (2, 3)]);
        let mut t = Target::new(vec![0, 0, 1, 1, 0]);
        t.add_edge(0, 1);
        t.add_edge(2, 3);
        let m = find_monomorphism(&p, &t).expect("both components embed");
        assert!(is_monomorphism(&p, &t, &m));
    }

    #[test]
    fn step_limit_reports_limit() {
        // A hard instance: embed a 6-clique into a large sparse graph
        // where it does not exist, with a tiny budget.
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let p = Pattern::new(vec![0; 6], edges);
        let mut t = Target::new(vec![0; 40]);
        for i in 0..39 {
            t.add_edge(i, i + 1);
            if i + 2 < 40 {
                t.add_edge(i, i + 2);
            }
            if i + 3 < 40 {
                t.add_edge(i, i + 3);
            }
            if i + 4 < 40 {
                t.add_edge(i, i + 4);
            }
            if i + 5 < 40 {
                t.add_edge(i, i + 5);
            }
        }
        let mut s = Searcher::with_config(&p, &t, SearchConfig::steps(3));
        assert_eq!(s.run(), MonoOutcome::LimitReached);
        assert!(s.stats().steps >= 3);
    }

    /// A 10-clique that does not embed into a width-8 band graph (whose
    /// largest cliques have 9 vertices): proving exhaustion takes ~10^8
    /// steps — several seconds even in release — so a mid-search cancel
    /// is observable long before the search would finish on its own.
    fn hard_instance() -> (Pattern, Target) {
        let k = 10;
        let (n, w) = (120, 8);
        let mut edges = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((a, b));
            }
        }
        let p = Pattern::new(vec![0; k], edges);
        let mut t = Target::new(vec![0; n]);
        for i in 0..n {
            for d in 1..=w {
                if i + d < n {
                    t.add_edge(i, i + d);
                }
            }
        }
        (p, t)
    }

    #[test]
    fn cancel_pre_raised_flag_stops_immediately() {
        let (p, t) = hard_instance();
        let flag = cgra_base::CancelFlag::new();
        flag.cancel();
        let mut s = Searcher::with_config(&p, &t, SearchConfig::unlimited().with_cancel_flag(flag));
        assert_eq!(s.run(), MonoOutcome::Cancelled);
        assert_eq!(s.stats().steps, 0, "pre-raised flag is seen before work");
    }

    #[test]
    fn cancel_mid_search_returns_within_bounded_delay() {
        // Raise the flag from a watchdog thread 50 ms in; the DFS polls
        // the flag every 1024 steps, so it must return promptly — far
        // inside the generous 10 s bound (an uncancelled run of this
        // instance explores millions of states).
        let (p, t) = hard_instance();
        let flag = cgra_base::CancelFlag::new();
        let watchdog = flag.clone();
        let started = std::time::Instant::now();
        let outcome = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                watchdog.cancel();
            });
            let mut s =
                Searcher::with_config(&p, &t, SearchConfig::unlimited().with_cancel_flag(flag));
            s.run()
        });
        assert_eq!(outcome, MonoOutcome::Cancelled);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "cancelled search must return promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn deadline_in_the_past_cancels() {
        let (p, t) = hard_instance();
        let past = std::time::Instant::now();
        let mut s = Searcher::with_config(&p, &t, SearchConfig::unlimited().with_deadline(past));
        assert_eq!(s.run(), MonoOutcome::Cancelled);
    }

    #[test]
    fn searcher_is_reusable_across_runs() {
        // Repeated runs on one searcher reuse the preallocated domain
        // stack and give identical results.
        let p = Pattern::new(vec![0, 1, 0], vec![(0, 1), (1, 2)]);
        let mut t = Target::new(vec![0, 1, 0, 1, 0]);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            t.add_edge(a, b);
        }
        let mut s = Searcher::new(&p, &t);
        let first = s.run();
        let second = s.run();
        assert_eq!(first, second);
        assert!(matches!(first, MonoOutcome::Found(_)));
        // Changing the config between runs takes effect.
        s.set_config(SearchConfig::steps(1));
        assert!(matches!(
            s.run(),
            MonoOutcome::Found(_) | MonoOutcome::LimitReached
        ));
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let p = Pattern::new(vec![0, 0], vec![(0, 1)]);
        let t = clique(4, 0);
        let all = Searcher::new(&p, &t).find_all(1000);
        // Ordered pairs of distinct vertices: 4 × 3 = 12.
        assert_eq!(all.len(), 12);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
        for m in &all {
            assert!(is_monomorphism(&p, &t, m));
        }
    }

    #[test]
    fn requirements_filter_candidates() {
        // Two vertices, one needing capability bit 0b10. Target: a path
        // of three vertices where only the middle one provides 0b10.
        let p = Pattern::new(vec![0, 0], vec![(0, 1)]).with_requirements(vec![0b10, 0]);
        let mut t = Target::new(vec![0, 0, 0]);
        t.add_edge(0, 1);
        t.add_edge(1, 2);
        let t = t.with_capabilities(vec![0b01, 0b11, 0b01]);
        let m = find_monomorphism(&p, &t).expect("middle vertex hosts the constrained node");
        assert_eq!(m[0], 1, "constrained vertex lands on the capable target");
        assert!(is_monomorphism(&p, &t, &m));
        // The same map with vertex 0 elsewhere is rejected.
        assert!(!is_monomorphism(&p, &t, &[0, 1]));
    }

    #[test]
    fn unsatisfiable_requirement_exhausts() {
        let p = Pattern::new(vec![0], vec![]).with_requirements(vec![0b100]);
        let t = clique(3, 0).with_capabilities(vec![0b011; 3]);
        assert_eq!(Searcher::new(&p, &t).run(), MonoOutcome::Exhausted);
    }

    #[test]
    fn zero_requirements_change_nothing() {
        // A pattern with all-zero requirements against a
        // capability-carrying target enumerates exactly the same set as
        // the mask-free pattern.
        let p_plain = Pattern::new(vec![0, 0], vec![(0, 1)]);
        let p_masked = p_plain.clone().with_requirements(vec![0, 0]);
        let t = clique(4, 0).with_capabilities(vec![0b1, 0b0, 0b1, 0b0]);
        let a = Searcher::new(&p_plain, &t).find_all(100);
        let b = Searcher::new(&p_masked, &t).find_all(100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn capability_free_target_accepts_any_requirement() {
        let p = Pattern::new(vec![0], vec![]).with_requirements(vec![u32::MAX]);
        let t = clique(2, 0);
        assert!(find_monomorphism(&p, &t).is_some());
    }

    /// Brute-force cross-check on pseudo-random small instances.
    #[test]
    fn matches_brute_force_on_random_graphs() {
        fn brute_count(p: &Pattern, t: &Target) -> usize {
            let np = p.num_vertices();
            let nt = t.num_vertices();
            let mut count = 0;
            let mut map = vec![usize::MAX; np];
            fn rec(
                p: &Pattern,
                t: &Target,
                map: &mut Vec<usize>,
                depth: usize,
                count: &mut usize,
                nt: usize,
            ) {
                if depth == map.len() {
                    *count += 1;
                    return;
                }
                'outer: for cand in 0..nt {
                    if map[..depth].contains(&cand) {
                        continue;
                    }
                    if t.label(cand) != p.label(depth) {
                        continue;
                    }
                    for &w in p.neighbors(depth) {
                        if w < depth && !t.adjacent(map[w], cand) {
                            continue 'outer;
                        }
                    }
                    map[depth] = cand;
                    rec(p, t, map, depth + 1, count, nt);
                    map[depth] = usize::MAX;
                }
            }
            rec(p, t, &mut map, 0, &mut count, nt);
            count
        }

        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let np = 2 + (next() % 4) as usize; // 2..=5
            let nt = 4 + (next() % 5) as usize; // 4..=8
            let nlabels = 1 + (next() % 3) as u32;
            let plabels: Vec<u32> = (0..np).map(|_| (next() % nlabels as u64) as u32).collect();
            let tlabels: Vec<u32> = (0..nt).map(|_| (next() % nlabels as u64) as u32).collect();
            let mut pedges = Vec::new();
            for a in 0..np {
                for b in (a + 1)..np {
                    if next() % 2 == 0 {
                        pedges.push((a, b));
                    }
                }
            }
            let p = Pattern::new(plabels, pedges);
            let mut t = Target::new(tlabels);
            for a in 0..nt {
                for b in (a + 1)..nt {
                    if next() % 2 == 0 {
                        t.add_edge(a, b);
                    }
                }
            }
            let fast = count_monomorphisms(&p, &t, 1_000_000);
            let slow = brute_count(&p, &t);
            assert_eq!(fast, slow, "trial {trial}: np={np} nt={nt}");
        }
    }
}
