//! The candidate-set bit set of the monomorphism search.
//!
//! Candidate sets are built by intersecting neighbourhood rows of the
//! target graph; the word-vector implementation is the workspace-wide
//! [`cgra_base::DenseBitSet`], re-exported here under the crate's
//! historical name.

/// A set of vertex indices backed by a word vector
/// (re-export of [`cgra_base::DenseBitSet`]).
pub use cgra_base::DenseBitSet as BitSet;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn full_and_algebra() {
        let mut a = BitSet::full(70);
        assert_eq!(a.len(), 70);
        let b: BitSet = [3usize, 68].into_iter().collect();
        let mut b70 = BitSet::new(70);
        for i in b.iter() {
            b70.insert(i);
        }
        a.subtract(&b70);
        assert_eq!(a.len(), 68);
        a.union_with(&b70);
        assert_eq!(a.len(), 70);
        a.intersect_with(&b70);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 68]);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = BitSet::new(10);
        a.insert(1);
        let mut b = BitSet::new(10);
        b.insert(7);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(3);
        s.insert(3);
    }
}
