//! A fixed-capacity bit set over dense vertex indices.

use std::fmt;

/// A set of vertex indices backed by a word vector.
///
/// The workhorse of the monomorphism search: candidate sets are built by
/// intersecting neighbourhood rows of the target graph.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set over indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.mask_tail();
        s
    }

    fn mask_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The exclusive upper bound on indices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes an index (no-op when absent).
    pub fn remove(&mut self, i: usize) {
        if i < self.capacity {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Copies `other` into `self` (capacities must match).
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the largest index seen.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().map(|&i| i + 1).max().unwrap_or(0);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over members of a [`BitSet`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn full_and_algebra() {
        let mut a = BitSet::full(70);
        assert_eq!(a.len(), 70);
        let b: BitSet = [3usize, 68].into_iter().collect();
        let mut b70 = BitSet::new(70);
        for i in b.iter() {
            b70.insert(i);
        }
        a.subtract(&b70);
        assert_eq!(a.len(), 68);
        a.union_with(&b70);
        assert_eq!(a.len(), 70);
        a.intersect_with(&b70);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 68]);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = BitSet::new(10);
        a.insert(1);
        let mut b = BitSet::new(10);
        b.insert(7);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(3);
        s.insert(3);
    }
}
