//! Pattern and target graph representations for the search.

use std::fmt;

use crate::BitSet;

/// The (small) pattern graph: undirected, vertex-labelled.
///
/// For the CGRA mapper this is the scheduled DFG with labels
/// `l_G(v) = T_v mod II`.
#[derive(Clone, Debug)]
pub struct Pattern {
    labels: Vec<u32>,
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Pattern {
    /// Builds a pattern from labels and undirected edges.
    ///
    /// Self-loops and duplicate edges are ignored (a self-loop imposes
    /// no constraint under an injective map into a target whose
    /// self-relations are implicit).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex out of range.
    pub fn new(labels: Vec<u32>, edges: Vec<(usize, usize)>) -> Self {
        let n = labels.len();
        let mut adj = vec![Vec::new(); n];
        let mut num_edges = 0;
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            if a == b || adj[a].contains(&b) {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
            num_edges += 1;
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        Pattern {
            labels,
            adj,
            num_edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The label of a vertex.
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// The distinct neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// The degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

/// The (large) target graph: undirected, vertex-labelled, with bit-set
/// adjacency rows.
///
/// For the CGRA mapper this is the MRRG; the `monomap-core` crate builds
/// the rows directly from the CGRA adjacency masks without enumerating
/// vertex pairs.
#[derive(Clone)]
pub struct Target {
    labels: Vec<u32>,
    rows: Vec<BitSet>,
}

impl fmt::Debug for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Target")
            .field("num_vertices", &self.labels.len())
            .finish()
    }
}

impl Target {
    /// Creates a target with the given labels and no edges.
    pub fn new(labels: Vec<u32>) -> Self {
        let n = labels.len();
        Target {
            labels,
            rows: vec![BitSet::new(n); n],
        }
    }

    /// Creates a target from labels and prebuilt adjacency rows.
    ///
    /// # Panics
    ///
    /// Panics if row count or capacities disagree with the label count.
    /// Symmetry is the caller's responsibility (checked in debug builds).
    pub fn from_rows(labels: Vec<u32>, rows: Vec<BitSet>) -> Self {
        let n = labels.len();
        assert_eq!(rows.len(), n, "one adjacency row per vertex");
        for row in &rows {
            assert_eq!(row.capacity(), n, "row capacity must equal vertex count");
        }
        #[cfg(debug_assertions)]
        for a in 0..n {
            for b in rows[a].iter() {
                debug_assert!(rows[b].contains(a), "adjacency must be symmetric");
                debug_assert_ne!(a, b, "self loops are implicit");
            }
        }
        Target { labels, rows }
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or self-loops.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "self loops are implicit in the target");
        self.rows[a].insert(b);
        self.rows[b].insert(a);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The label of a vertex.
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// The adjacency row of a vertex.
    pub fn row(&self, v: usize) -> &BitSet {
        &self.rows[v]
    }

    /// The degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.rows[v].len()
    }

    /// Adjacency test.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.rows[a].contains(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_dedups_and_sorts() {
        let p = Pattern::new(vec![0, 0, 1], vec![(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(p.num_edges(), 2);
        assert_eq!(p.neighbors(1), &[0, 2]);
        assert_eq!(p.degree(1), 2);
        assert_eq!(p.label(2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pattern_rejects_bad_edge() {
        let _ = Pattern::new(vec![0], vec![(0, 1)]);
    }

    #[test]
    fn target_edges_symmetric() {
        let mut t = Target::new(vec![0, 1, 2]);
        t.add_edge(0, 2);
        assert!(t.adjacent(0, 2));
        assert!(t.adjacent(2, 0));
        assert!(!t.adjacent(0, 1));
        assert_eq!(t.degree(0), 1);
    }

    #[test]
    fn target_from_rows() {
        let mut rows = vec![BitSet::new(2), BitSet::new(2)];
        rows[0].insert(1);
        rows[1].insert(0);
        let t = Target::from_rows(vec![5, 5], rows);
        assert!(t.adjacent(0, 1));
        assert_eq!(t.label(0), 5);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn target_rejects_self_loop() {
        let mut t = Target::new(vec![0]);
        t.add_edge(0, 0);
    }
}
