//! Pattern and target graph representations for the search.

use std::fmt;

use crate::BitSet;

/// The (small) pattern graph: undirected, vertex-labelled.
///
/// For the CGRA mapper this is the scheduled DFG with labels
/// `l_G(v) = T_v mod II`.
#[derive(Clone, Debug)]
pub struct Pattern {
    labels: Vec<u32>,
    adj: Vec<Vec<usize>>,
    num_edges: usize,
    /// Per-vertex requirement bitmasks (empty = unconstrained); see
    /// [`Pattern::with_requirements`].
    requirements: Vec<u32>,
}

impl Pattern {
    /// Builds a pattern from labels and undirected edges.
    ///
    /// Self-loops and duplicate edges are ignored (a self-loop imposes
    /// no constraint under an injective map into a target whose
    /// self-relations are implicit).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex out of range.
    pub fn new(labels: Vec<u32>, edges: Vec<(usize, usize)>) -> Self {
        let n = labels.len();
        let mut adj = vec![Vec::new(); n];
        let mut num_edges = 0;
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            if a == b || adj[a].contains(&b) {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
            num_edges += 1;
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        Pattern {
            labels,
            adj,
            num_edges,
            requirements: Vec::new(),
        }
    }

    /// Attaches per-vertex *requirement* bitmasks: vertex `u` may only
    /// map to a target vertex `t` whose capability mask (see
    /// [`Target::with_capabilities`]) contains every bit of
    /// `requirements[u]`. A mask of `0` leaves the vertex
    /// unconstrained; a pattern without requirements behaves exactly as
    /// before, so label-only callers are unaffected.
    ///
    /// For the CGRA mapper the bits are operation classes and the
    /// target masks are per-PE functional-unit capabilities.
    ///
    /// # Panics
    ///
    /// Panics if `requirements` does not cover every vertex.
    #[must_use]
    pub fn with_requirements(mut self, requirements: Vec<u32>) -> Self {
        assert_eq!(
            requirements.len(),
            self.labels.len(),
            "one requirement mask per vertex"
        );
        self.requirements = requirements;
        self
    }

    /// The requirement bitmask of a vertex (`0` when unconstrained).
    pub fn requirement(&self, v: usize) -> u32 {
        self.requirements.get(v).copied().unwrap_or(0)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The label of a vertex.
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// The distinct neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// The degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

/// The (large) target graph: undirected, vertex-labelled, with bit-set
/// adjacency rows.
///
/// For the CGRA mapper this is the MRRG; the `monomap-core` crate builds
/// the rows directly from the CGRA reachability masks without
/// enumerating vertex pairs. Under a k-hop routing model the edge
/// relation is "related via a route of at most `k` hops": the rows the
/// DFS consults are the *cumulative union* over route lengths, so the
/// consistency check remains a single bitset test for any `k`, and the
/// per-distance structure (when built via [`Target::from_tiers`]) is
/// kept alongside for [`Target::route_length`].
#[derive(Clone)]
pub struct Target {
    labels: Vec<u32>,
    rows: Vec<BitSet>,
    /// Per-distance reachability rows: `tiers[d][v]` = vertices related
    /// to `v` via a shortest route of exactly `d` hops (tier 0 is the
    /// held-value / same-resource relation). Empty for targets built
    /// from a plain adjacency relation.
    tiers: Vec<Vec<BitSet>>,
    /// Per-vertex capability bitmasks (empty = every vertex accepts any
    /// requirement); see [`Target::with_capabilities`].
    capabilities: Vec<u32>,
}

impl fmt::Debug for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Target")
            .field("num_vertices", &self.labels.len())
            .finish()
    }
}

impl Target {
    /// Creates a target with the given labels and no edges.
    pub fn new(labels: Vec<u32>) -> Self {
        let n = labels.len();
        Target {
            labels,
            rows: vec![BitSet::new(n); n],
            tiers: Vec::new(),
            capabilities: Vec::new(),
        }
    }

    /// Creates a target from labels and prebuilt adjacency rows.
    ///
    /// # Panics
    ///
    /// Panics if row count or capacities disagree with the label count.
    /// Symmetry is the caller's responsibility (checked in debug builds).
    pub fn from_rows(labels: Vec<u32>, rows: Vec<BitSet>) -> Self {
        let n = labels.len();
        assert_eq!(rows.len(), n, "one adjacency row per vertex");
        for row in &rows {
            assert_eq!(row.capacity(), n, "row capacity must equal vertex count");
        }
        #[cfg(debug_assertions)]
        for a in 0..n {
            for b in rows[a].iter() {
                debug_assert!(rows[b].contains(a), "adjacency must be symmetric");
                debug_assert_ne!(a, b, "self loops are implicit");
            }
        }
        Target {
            labels,
            rows,
            tiers: Vec::new(),
            capabilities: Vec::new(),
        }
    }

    /// Creates a target from labels and per-distance reachability
    /// tiers: `tiers[d]` gives, for each vertex, the set of vertices
    /// related to it via a shortest route of exactly `d` hops (tier 0
    /// is the held-value / same-resource relation and may be empty
    /// rows). The edge rows consumed by the DFS are the cumulative
    /// union of every tier — a vertex pair is "adjacent" when *some*
    /// route within the bound relates it — so the search itself is
    /// oblivious to the route bound; [`Target::route_length`] exposes
    /// the distance structure to callers that record routes.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty, a tier does not cover every vertex,
    /// or a row capacity disagrees with the label count. Tier
    /// disjointness and symmetry are the caller's responsibility
    /// (checked in debug builds).
    pub fn from_tiers(labels: Vec<u32>, tiers: Vec<Vec<BitSet>>) -> Self {
        let n = labels.len();
        assert!(!tiers.is_empty(), "at least one tier");
        let mut rows = vec![BitSet::new(n); n];
        for tier in &tiers {
            assert_eq!(tier.len(), n, "one tier row per vertex");
            for (v, t) in tier.iter().enumerate() {
                assert_eq!(t.capacity(), n, "row capacity must equal vertex count");
                #[cfg(debug_assertions)]
                debug_assert!(
                    rows[v].iter().all(|b| !t.contains(b)),
                    "tiers must be disjoint (vertex {v})"
                );
                rows[v].union_with(t);
            }
        }
        #[cfg(debug_assertions)]
        for a in 0..n {
            for b in rows[a].iter() {
                debug_assert!(rows[b].contains(a), "reachability must be symmetric");
                debug_assert_ne!(a, b, "self relations are implicit");
            }
        }
        Target {
            labels,
            rows,
            tiers,
            capabilities: Vec::new(),
        }
    }

    /// Attaches per-vertex *capability* bitmasks, the counterpart of
    /// [`Pattern::with_requirements`]: a pattern vertex with
    /// requirement `r` is only a candidate for target vertices whose
    /// mask contains every bit of `r`. A target without capabilities
    /// accepts every requirement (as if every mask were all-ones).
    ///
    /// # Panics
    ///
    /// Panics if `capabilities` does not cover every vertex.
    #[must_use]
    pub fn with_capabilities(mut self, capabilities: Vec<u32>) -> Self {
        assert_eq!(
            capabilities.len(),
            self.labels.len(),
            "one capability mask per vertex"
        );
        self.capabilities = capabilities;
        self
    }

    /// The capability bitmask of a vertex (all-ones when the target
    /// carries no capability map).
    pub fn capability(&self, v: usize) -> u32 {
        self.capabilities.get(v).copied().unwrap_or(u32::MAX)
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices, self-loops, or targets built
    /// with per-distance tiers (their relation is fixed at
    /// construction; mutating the union rows would desynchronise the
    /// distance structure).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "self loops are implicit in the target");
        assert!(self.tiers.is_empty(), "tiered targets are immutable");
        self.rows[a].insert(b);
        self.rows[b].insert(a);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The label of a vertex.
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// The adjacency row of a vertex.
    pub fn row(&self, v: usize) -> &BitSet {
        &self.rows[v]
    }

    /// The degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.rows[v].len()
    }

    /// Adjacency test.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.rows[a].contains(b)
    }

    /// The length of the shortest route relating `a` and `b`, when they
    /// are related at all: the index of the first tier containing the
    /// pair. Targets built without tiers ([`Target::new`],
    /// [`Target::from_rows`]) model the classic one-hop relation and
    /// report every related pair as length 1.
    pub fn route_length(&self, a: usize, b: usize) -> Option<usize> {
        if self.tiers.is_empty() {
            return self.rows[a].contains(b).then_some(1);
        }
        self.tiers.iter().position(|tier| tier[a].contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_dedups_and_sorts() {
        let p = Pattern::new(vec![0, 0, 1], vec![(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(p.num_edges(), 2);
        assert_eq!(p.neighbors(1), &[0, 2]);
        assert_eq!(p.degree(1), 2);
        assert_eq!(p.label(2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pattern_rejects_bad_edge() {
        let _ = Pattern::new(vec![0], vec![(0, 1)]);
    }

    #[test]
    fn target_edges_symmetric() {
        let mut t = Target::new(vec![0, 1, 2]);
        t.add_edge(0, 2);
        assert!(t.adjacent(0, 2));
        assert!(t.adjacent(2, 0));
        assert!(!t.adjacent(0, 1));
        assert_eq!(t.degree(0), 1);
    }

    #[test]
    fn target_from_rows() {
        let mut rows = vec![BitSet::new(2), BitSet::new(2)];
        rows[0].insert(1);
        rows[1].insert(0);
        let t = Target::from_rows(vec![5, 5], rows);
        assert!(t.adjacent(0, 1));
        assert_eq!(t.label(0), 5);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn target_rejects_self_loop() {
        let mut t = Target::new(vec![0]);
        t.add_edge(0, 0);
    }

    /// A 4-vertex path 0—1—2—3 expressed as distance tiers up to 2:
    /// the union rows relate pairs at distance ≤ 2 and `route_length`
    /// recovers the per-pair distance.
    fn path_tiers() -> Target {
        let n = 4;
        let tier0 = vec![BitSet::new(n); n]; // no held-value pairs
        let mut tier1 = vec![BitSet::new(n); n];
        let mut tier2 = vec![BitSet::new(n); n];
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            tier1[a].insert(b);
            tier1[b].insert(a);
        }
        for (a, b) in [(0, 2), (1, 3)] {
            tier2[a].insert(b);
            tier2[b].insert(a);
        }
        Target::from_tiers(vec![0; n], vec![tier0, tier1, tier2])
    }

    #[test]
    fn tiered_target_unions_rows_and_reports_route_lengths() {
        let t = path_tiers();
        // The DFS-facing relation is the cumulative union.
        assert!(t.adjacent(0, 1));
        assert!(t.adjacent(0, 2));
        assert!(!t.adjacent(0, 3));
        assert_eq!(t.degree(1), 3);
        // The distance structure survives for route recording.
        assert_eq!(t.route_length(0, 1), Some(1));
        assert_eq!(t.route_length(2, 0), Some(2));
        assert_eq!(t.route_length(0, 3), None);
        assert_eq!(t.route_length(1, 1), None);
    }

    #[test]
    fn untier_target_reports_unit_route_lengths() {
        let mut t = Target::new(vec![0, 0, 0]);
        t.add_edge(0, 2);
        assert_eq!(t.route_length(0, 2), Some(1));
        assert_eq!(t.route_length(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn tiered_target_rejects_add_edge() {
        let mut t = path_tiers();
        t.add_edge(0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn from_tiers_rejects_empty() {
        let _ = Target::from_tiers(vec![0, 0], Vec::new());
    }
}
