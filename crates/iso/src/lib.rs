//! # cgra-iso — subgraph monomorphism search
//!
//! The spatial half of the `monomap` mapper (paper §IV-C): given the
//! scheduled DFG (an undirected graph whose vertices are labelled with
//! kernel slots) and the MRRG (a much larger labelled graph), find an
//! **injective, label-preserving, edge-preserving** map — a
//! monomorphism (paper §IV-A, properties mono1–mono3).
//!
//! The engine is a VF2-family backtracking search in the spirit of the
//! algorithms the paper cites (RI, VF3), specialised to the structure of
//! the problem:
//!
//! * vertices are matched in a connectivity-first order (greatest
//!   constraint first), so candidate sets shrink by neighbourhood
//!   intersection rather than label scan;
//! * candidate sets are bit sets; each extension intersects the
//!   neighbourhood bit rows of already-mapped neighbours;
//! * label partitioning (every DFG node can only map into its own MRRG
//!   time layer) and degree pruning are applied up front;
//! * a step budget makes the search interruptible for the mapper's
//!   timeout handling.
//!
//! The crate is independent of CGRA specifics: it works on any pair of
//! labelled graphs.
//!
//! ## Example
//!
//! ```
//! use cgra_iso::{Pattern, Target, find_monomorphism};
//!
//! // Pattern: a labelled path a(0) - b(1) - c(0).
//! let pattern = Pattern::new(vec![0, 1, 0], vec![(0, 1), (1, 2)]);
//! // Target: a labelled square with one diagonal.
//! let mut target = Target::new(vec![0, 1, 0, 1]);
//! for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
//!     target.add_edge(a, b);
//! }
//! let m = find_monomorphism(&pattern, &target).expect("embeddable");
//! assert_eq!(m.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod graph;
mod search;

pub use bitset::BitSet;
pub use cgra_base::CancelFlag;
pub use graph::{Pattern, Target};
pub use search::{
    count_monomorphisms, find_monomorphism, is_monomorphism, MonoOutcome, MonoStats, SearchConfig,
    Searcher,
};
