//! Scaling walkthrough (the story behind Fig. 5): map one kernel onto
//! growing CGRAs and watch the decoupled mapper's compile time stay
//! flat while the formulation of a coupled mapper would explode.
//!
//! Run with: `cargo run --release --example scaling [benchmark]`

use std::time::Instant;

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "aes".into());
    let dfg = suite::generate(&bench);
    println!(
        "benchmark {bench}: {} nodes, {} edges, RecII {}",
        dfg.num_nodes(),
        dfg.num_edges(),
        rec_ii(&dfg)
    );
    println!(
        "\n{:>7} | {:>5} {:>5} | {:>10} {:>10} {:>10} | {:>12}",
        "CGRA", "mII", "II", "total[s]", "time[s]", "space[s]", "mono steps"
    );
    println!("{}", "-".repeat(78));
    for size in [2usize, 3, 4, 5, 8, 10, 16, 20] {
        let cgra = Cgra::new(size, size)?;
        let mii = min_ii(&dfg, &cgra);
        let service = MappingService::new(&cgra);
        let t0 = Instant::now();
        let report = service.map(&MapRequest::new(EngineId::Decoupled, dfg.clone()));
        match &report.outcome {
            MapOutcome::Mapped { ii } => {
                validate_report(&dfg, &cgra, &report)?;
                println!(
                    "{:>4}x{:<2} | {:>5} {:>5} | {:>10.4} {:>10.4} {:>10.4} | {:>12}",
                    size,
                    size,
                    mii,
                    ii,
                    t0.elapsed().as_secs_f64(),
                    report.stats.time_phase_seconds,
                    report.stats.space_phase_seconds,
                    report.stats.mono_steps
                );
            }
            MapOutcome::Failed(e) => println!("{size:>4}x{size:<2} | {mii:>5}     - | failed: {e}"),
            MapOutcome::Rejected { reason } => {
                println!("{size:>4}x{size:<2} | {mii:>5}     - | rejected: {reason}")
            }
        }
    }
    println!(
        "\nThe time phase depends on the CGRA only through two scalar constants\n\
         (capacity and connectivity degree), so compile time stays flat — the\n\
         paper's Fig. 5 lower curve. Compare `cargo run -p monomap-bench --release --bin fig5`\n\
         for the coupled baseline's upper curve."
    );
    Ok(())
}
