//! Topology ablation: the same kernels mapped onto torus, plain mesh
//! and 8-neighbour (diagonal) grids.
//!
//! The paper's uniform connectivity degree (`D_M = 5` on 3×3+) holds
//! on a torus; a plain mesh has weaker corners, so the conservative
//! degree bound drops to 3 and some kernels need a higher II or more
//! window slack. A diagonal grid (`D_M = 4+…`) goes the other way.
//!
//! Run with: `cargo run --release --example topology_ablation`

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = ["bitcount", "susan", "sha1", "gsm", "fft", "lud"];
    println!(
        "{:<12} | {:>14} | {:>14} | {:>14}",
        "benchmark", "torus (II/DM)", "mesh (II/DM)", "diagonal (II/DM)"
    );
    println!("{}", "-".repeat(66));
    // One service per topology; the kernels run against each as plain
    // requests.
    let services: Vec<(Topology, MappingService)> =
        [Topology::Torus, Topology::Mesh, Topology::Diagonal]
            .into_iter()
            .map(|topo| {
                let cgra = Cgra::with_topology(4, 4, topo)?;
                Ok((topo, MappingService::new(&cgra)))
            })
            .collect::<Result<_, cgra_arch::ArchError>>()?;
    for name in kernels {
        let dfg = suite::generate(name);
        let mut row = format!("{name:<12} |");
        for (_, service) in &services {
            let report = service.map(&MapRequest::new(EngineId::Decoupled, dfg.clone()));
            let degree = service.cgra().connectivity_degree();
            let cell = match report.outcome.ii() {
                Some(ii) => {
                    validate_report(&dfg, service.cgra(), &report)?;
                    format!("{ii:>9}/{degree:<4}")
                }
                None => format!("{:>9}/{degree:<4}", "-"),
            };
            row.push_str(&format!(" {cell} |"));
        }
        println!("{row}");
    }
    println!(
        "\nThe torus is the paper-faithful default (uniform degree; see DESIGN.md §1).\n\
         On the mesh the conservative degree bound (min degree + 1) keeps the\n\
         monomorphism-existence argument sound at the cost of occasional II/slack."
    );
    Ok(())
}
