//! Topology ablation: the same kernels mapped onto torus, plain mesh
//! and 8-neighbour (diagonal) grids.
//!
//! The paper's uniform connectivity degree (`D_M = 5` on 3×3+) holds
//! on a torus; a plain mesh has weaker corners, so the conservative
//! degree bound drops to 3 and some kernels need a higher II or more
//! window slack. A diagonal grid (`D_M = 4+…`) goes the other way.
//!
//! Run with: `cargo run --release --example topology_ablation`

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = ["bitcount", "susan", "sha1", "gsm", "fft", "lud"];
    println!(
        "{:<12} | {:>14} | {:>14} | {:>14}",
        "benchmark", "torus (II/DM)", "mesh (II/DM)", "diagonal (II/DM)"
    );
    println!("{}", "-".repeat(66));
    for name in kernels {
        let dfg = suite::generate(name);
        let mut row = format!("{name:<12} |");
        for topo in [Topology::Torus, Topology::Mesh, Topology::Diagonal] {
            let cgra = Cgra::with_topology(4, 4, topo)?;
            let cell = match DecoupledMapper::new(&cgra).map(&dfg) {
                Ok(r) => {
                    r.mapping.validate(&dfg, &cgra)?;
                    format!("{:>9}/{:<4}", r.mapping.ii(), cgra.connectivity_degree())
                }
                Err(_) => format!("{:>9}/{:<4}", "-", cgra.connectivity_degree()),
            };
            row.push_str(&format!(" {cell} |"));
        }
        println!("{row}");
    }
    println!(
        "\nThe torus is the paper-faithful default (uniform degree; see DESIGN.md §1).\n\
         On the mesh the conservative degree bound (min degree + 1) keeps the\n\
         monomorphism-existence argument sound at the cost of occasional II/slack."
    );
    Ok(())
}
