//! Tour of the 17-kernel benchmark suite (the paper's Table III
//! workloads) on a 5×5 CGRA: mapped II vs the `mII` lower bound, phase
//! timings, and register pressure — run as **one batch** through the
//! [`MappingService`], with reports coming back in input order.
//!
//! Run with: `cargo run --release --example suite_tour`

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cgra = Cgra::new(5, 5)?;
    println!("CGRA: {cgra}\n");

    // One request per kernel; the service fans the batch out across
    // four worker threads and returns reports in input order.
    let requests: Vec<MapRequest> = suite::names()
        .iter()
        .map(|name| MapRequest::new(EngineId::Decoupled, suite::generate(name)))
        .collect();
    let service = MappingService::new(&cgra).with_parallelism(4);
    let reports = service.map_batch(&requests);

    println!(
        "{:<16}{:>6} | {:>4} {:>4} | {:>9} {:>9} | {:>8} {:>10}",
        "benchmark", "nodes", "mII", "II", "time[s]", "space[s]", "maxRF", "timesols"
    );
    println!("{}", "-".repeat(84));
    let mut mapped = 0;
    let mut at_mii = 0;
    for (request, report) in requests.iter().zip(&reports) {
        let dfg = &request.dfg;
        let mii = min_ii(dfg, &cgra);
        match &report.outcome {
            MapOutcome::Mapped { ii } => {
                validate_report(dfg, &cgra, report)?;
                let mapping = report.mapping.as_ref().expect("validated mapped report");
                let pressure = register_pressure(dfg, mapping, &cgra, 8);
                let max_rf = pressure.iter().copied().max().unwrap_or(0);
                println!(
                    "{:<16}{:>6} | {:>4} {:>4} | {:>9.4} {:>9.4} | {:>8} {:>10}",
                    report.dfg_name,
                    dfg.num_nodes(),
                    mii,
                    ii,
                    report.stats.time_phase_seconds,
                    report.stats.space_phase_seconds,
                    max_rf,
                    report.stats.time_solutions
                );
                mapped += 1;
                if *ii == mii {
                    at_mii += 1;
                }
            }
            MapOutcome::Failed(e) => {
                println!(
                    "{:<16}{:>6} | {:>4}    - | failed after {:.2}s: {e}",
                    report.dfg_name,
                    dfg.num_nodes(),
                    mii,
                    report.stats.total_seconds
                );
            }
            MapOutcome::Rejected { reason } => {
                println!("{:<16} rejected: {reason}", report.dfg_name);
            }
        }
    }
    println!(
        "\n{mapped}/17 kernels mapped; {at_mii} at the mII lower bound (the paper finds \
         mII-optimal mappings in most cases on 5x5)."
    );
    Ok(())
}
