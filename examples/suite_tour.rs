//! Tour of the 17-kernel benchmark suite (the paper's Table III
//! workloads) on a 5×5 CGRA: mapped II vs the `mII` lower bound, phase
//! timings, and register pressure.
//!
//! Run with: `cargo run --release --example suite_tour`

use std::time::Instant;

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cgra = Cgra::new(5, 5)?;
    println!("CGRA: {cgra}\n");
    println!(
        "{:<16}{:>6} | {:>4} {:>4} | {:>9} {:>9} | {:>8} {:>10}",
        "benchmark", "nodes", "mII", "II", "time[s]", "space[s]", "maxRF", "timesols"
    );
    println!("{}", "-".repeat(84));
    let mut mapped = 0;
    let mut at_mii = 0;
    for name in suite::names() {
        let dfg = suite::generate(name);
        let mii = min_ii(&dfg, &cgra);
        let t0 = Instant::now();
        match DecoupledMapper::new(&cgra).map(&dfg) {
            Ok(result) => {
                result.mapping.validate(&dfg, &cgra)?;
                let pressure = register_pressure(&dfg, &result.mapping, &cgra, 8);
                let max_rf = pressure.iter().copied().max().unwrap_or(0);
                println!(
                    "{:<16}{:>6} | {:>4} {:>4} | {:>9.4} {:>9.4} | {:>8} {:>10}",
                    name,
                    dfg.num_nodes(),
                    mii,
                    result.mapping.ii(),
                    result.stats.time_phase_seconds,
                    result.stats.space_phase_seconds,
                    max_rf,
                    result.stats.time_solutions
                );
                mapped += 1;
                if result.mapping.ii() == mii {
                    at_mii += 1;
                }
            }
            Err(e) => {
                println!(
                    "{:<16}{:>6} | {:>4}    - | failed after {:.2}s: {e}",
                    name,
                    dfg.num_nodes(),
                    mii,
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }
    println!(
        "\n{mapped}/17 kernels mapped; {at_mii} at the mII lower bound (the paper finds \
         mII-optimal mappings in most cases on 5x5)."
    );
    Ok(())
}
