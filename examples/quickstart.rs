//! Quickstart: map the paper's running example (Fig. 2a) onto a 2×2
//! CGRA through the unified service API, reproducing Table I, Table
//! II, the Fig. 2b kernel and a functional simulation of the mapped
//! loop.
//!
//! Run with: `cargo run --example quickstart`

use monomap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = running_example();
    println!("== DFG (paper Fig. 2a) ==\n{dfg}\n");

    // Table I: ASAP / ALAP / Mobility Schedule.
    let mobility = Mobility::compute(&dfg)?;
    println!("== Table I: ASAP / ALAP / MobS ==");
    println!("{}", mobility.to_table_string());

    // mII = max(ResII, RecII) — the search start.
    let cgra = Cgra::new(2, 2)?;
    println!(
        "ResII = {}, RecII = {}, mII = {}  (paper: 4, 4, 4)\n",
        res_ii(&dfg, &cgra),
        rec_ii(&dfg),
        min_ii(&dfg, &cgra)
    );

    // Table II: the Kernel Mobility Schedule at II = 4.
    let kms = Kms::new(&mobility, 4);
    println!("== Table II: KMS at II = 4 ==");
    println!("{}", kms.to_table_string());

    // The decoupled mapper, through the unified service API: one
    // serializable MapRequest in, one MapReport out. (A request
    // round-trips through JSON, so the same call works over a wire.)
    let service = MappingService::new(&cgra);
    let request = MapRequest::new(EngineId::Decoupled, dfg.clone());
    let report = service.map(&serde_json::from_str(&serde_json::to_string(&request)?)?);
    validate_report(&dfg, &cgra, &report)?;
    let mapping = report.mapping.as_ref().expect("validated mapped report");
    println!(
        "engine `{}` mapped at II = {} (time phase {:.4}s, space phase {:.4}s)\n",
        report.engine,
        mapping.ii(),
        report.stats.time_phase_seconds,
        report.stats.space_phase_seconds
    );

    println!("== Kernel (paper Fig. 2b, steady state) ==");
    println!("{}", mapping.kernel_table(&cgra));

    println!("== Full modulo schedule, 2 iterations ==");
    println!("{}", mapping.schedule_table(&dfg, 2));

    // Execute the mapped loop and check it against the reference
    // interpreter.
    let env = SimEnv::new(64)
        .with_memory((0..64).collect())
        .with_input_stream(vec![3, 7, 11, 15])
        .with_input_stream(vec![2, 4, 6, 8])
        .with_input_stream(vec![1, 5, 9, 13]);
    let reference = interpret(&dfg, &env, 4)?;
    let machine = MachineSimulator::new(&cgra, &dfg, mapping).run(&env, 4)?;
    assert_eq!(reference.outputs, machine.outputs);
    assert_eq!(reference.memory, machine.memory);
    println!(
        "simulation: {} live-out values over 4 iterations match the reference interpreter ({} machine cycles)",
        machine.outputs.len(),
        machine.cycles
    );

    let pressure = register_pressure(&dfg, mapping, &cgra, 4);
    println!(
        "per-PE register pressure: {pressure:?} (register file size {})",
        cgra.register_file_size()
    );
    Ok(())
}
